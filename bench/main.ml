(* Benchmark and experiment harness.

   Running this executable regenerates every experiment in EXPERIMENTS.md
   (the paper is a theory paper: its "tables and figures" are protocol
   listings and lemmas, each of which corresponds to a measurable artifact
   here), then runs bechamel micro-benchmarks over the library's hot
   operations.

     dune exec bench/main.exe                    # experiments + micro-benchmarks
     dune exec bench/main.exe -- quick           # experiments only
     dune exec bench/main.exe -- --json FILE     # timed scenarios -> wfc.obs.v1
     dune exec bench/main.exe -- --only serve    # just one scenario family *)

open Wfc_topology
open Wfc_model
open Wfc_tasks
open Wfc_core

let section title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n"

(* ------------------------------------------------------------------ *)
(* E1: Figure 1 — the k-shot atomic snapshot full-information protocol  *)
(* ------------------------------------------------------------------ *)

let e1 () =
  section "E1  Figure 1: k-shot atomic-snapshot full-information protocol";
  Printf.printf "%6s %6s %14s %14s\n" "n+1" "k" "shared ops/run" "distinct views";
  List.iter
    (fun (procs, k) ->
      let inputs = Array.init procs (fun i -> i) in
      let views = Hashtbl.create 64 in
      let ops = ref 0 in
      let trials = 50 in
      for seed = 0 to trials - 1 do
        let o =
          Runtime.run (Full_information.atomic_k_shot ~procs ~k ~inputs) (Runtime.random ~seed ())
        in
        Array.iter
          (function
            | Some v ->
              Hashtbl.replace views (Full_information.canonical_view (Printf.sprintf "#%d") v) ()
            | None -> ())
          o.Runtime.results;
        for p = 0 to procs - 1 do
          ops := !ops + Trace.steps_of o.Runtime.trace p
        done
      done;
      Printf.printf "%6d %6d %14.1f %14d\n" procs k
        (float_of_int !ops /. float_of_int trials)
        (Hashtbl.length views))
    [ (2, 1); (2, 2); (3, 1); (3, 2); (4, 2) ]

(* ------------------------------------------------------------------ *)
(* E2: Figure 2 — emulation of atomic snapshots over IIS                *)
(* ------------------------------------------------------------------ *)

let e2 () =
  section "E2  Figure 2: emulation cost and atomicity (Prop 4.1 / Cor 4.1)";
  Printf.printf "%6s %6s %12s %14s %12s\n" "n+1" "k" "memories" "writereads/p" "atomic";
  List.iter
    (fun (procs, k) ->
      let trials = 40 in
      let mem = ref 0 and wr = ref 0 and ok = ref 0 in
      for seed = 0 to trials - 1 do
        let r =
          Emulation.run (Emulation.full_information_spec ~procs ~k) (Runtime.random ~seed ())
        in
        mem := !mem + r.Emulation.cost.Emulation.memories;
        wr := !wr + Array.fold_left ( + ) 0 r.Emulation.cost.Emulation.write_reads;
        if Emulation.check r = Ok () then incr ok
      done;
      Printf.printf "%6d %6d %12.1f %14.1f %9d/%d\n" procs k
        (float_of_int !mem /. float_of_int trials)
        (float_of_int !wr /. float_of_int (trials * procs))
        !ok trials)
    [ (2, 1); (2, 2); (2, 4); (2, 8); (3, 1); (3, 2); (3, 4); (4, 2); (5, 2) ];
  Printf.printf "\nwith one crashed process (n+1=3, k=2): ";
  let ok = ref 0 in
  let trials = 40 in
  for seed = 0 to trials - 1 do
    let r =
      Emulation.run
        (Emulation.full_information_spec ~procs:3 ~k:2)
        (Runtime.random_with_crashes ~seed ~crash:[ seed mod 3 ] ())
    in
    if Emulation.check r = Ok () then incr ok
  done;
  Printf.printf "atomic %d/%d\n" !ok trials

(* ------------------------------------------------------------------ *)
(* E3/E4: protocol complexes = SDS^b (Lemmas 3.2 and 3.3)               *)
(* ------------------------------------------------------------------ *)

let e3_e4 () =
  section "E3  Lemma 3.2: one-shot IS protocol complex = SDS(s^n)";
  Printf.printf "%6s %10s %12s %10s\n" "n+1" "facets" "SDS facets" "equal";
  List.iter
    (fun procs ->
      let pc = Protocol_complex.one_shot_is ~procs in
      let sds = Sds.standard ~dim:(procs - 1) ~levels:1 in
      Printf.printf "%6d %10d %12d %10b\n" procs
        (Complex.num_facets (Chromatic.complex pc.Protocol_complex.chromatic))
        (Sds.count_facets ~dim:(procs - 1) ~levels:1)
        (Protocol_complex.matches_sds pc sds))
    [ 1; 2; 3; 4 ];
  section "E4  Lemma 3.3: b-shot IIS protocol complex = SDS^b(s^n)";
  Printf.printf "%6s %6s %10s %12s %10s\n" "n+1" "b" "facets" "SDS^b" "equal";
  List.iter
    (fun (procs, b) ->
      let pc = Protocol_complex.iis ~procs ~rounds:b in
      let sds = Sds.standard ~dim:(procs - 1) ~levels:b in
      Printf.printf "%6d %6d %10d %12d %10b\n" procs b
        (Complex.num_facets (Chromatic.complex pc.Protocol_complex.chromatic))
        (Sds.count_facets ~dim:(procs - 1) ~levels:b)
        (Protocol_complex.matches_sds pc sds))
    [ (2, 1); (2, 2); (2, 3); (3, 1); (3, 2) ]

(* ------------------------------------------------------------------ *)
(* E5: Lemma 2.2 — no holes                                             *)
(* ------------------------------------------------------------------ *)

let e5 () =
  section "E5  Lemma 2.2: SDS^b(s^n) and its links have no holes (Z/2 homology)";
  Printf.printf "%6s %6s %20s %10s %12s\n" "n" "b" "reduced betti" "acyclic" "links ok";
  List.iter
    (fun (n, b) ->
      let cx = Chromatic.complex (Sds.complex (Sds.standard ~dim:n ~levels:b)) in
      let betti =
        String.concat ","
          (Array.to_list (Array.map string_of_int (Homology.reduced_betti cx)))
      in
      let links_ok =
        List.for_all
          (fun sq ->
            let q = Simplex.dim sq in
            let max_hole = n - (q + 1) in
            max_hole < 1
            ||
            match Complex.link sq cx with
            | None -> true
            | Some l -> Homology.no_holes_up_to l max_hole)
          (Complex.simplices cx)
      in
      Printf.printf "%6d %6d %20s %10b %12b\n" n b ("(" ^ betti ^ ")")
        (Homology.is_acyclic cx) links_ok)
    [ (1, 1); (1, 3); (2, 1); (2, 2); (3, 1) ];
  Printf.printf "\ninteger homology (Smith normal form) on control spaces:\n";
  List.iter
    (fun (name, cx) -> Printf.printf "  %-12s %s\n" name (Homology_z.homology_summary cx))
    [
      ("SDS^2(s^2)", Chromatic.complex (Sds.complex (Sds.standard ~dim:2 ~levels:2)));
      ("2-sphere", Option.get (Complex.boundary (Complex.full_simplex 3)));
      ( "torus",
        Complex.of_facets
          (List.init 7 (fun i -> [ i mod 7; (i + 1) mod 7; (i + 3) mod 7 ])
          @ List.init 7 (fun i -> [ i mod 7; (i + 2) mod 7; (i + 3) mod 7 ])) );
      ( "RP^2",
        Complex.of_facets
          [ [ 0; 1; 4 ]; [ 0; 1; 5 ]; [ 0; 2; 3 ]; [ 0; 2; 5 ]; [ 0; 3; 4 ];
            [ 1; 2; 3 ]; [ 1; 2; 4 ]; [ 1; 3; 5 ]; [ 2; 4; 5 ]; [ 3; 4; 5 ] ] );
    ]

(* ------------------------------------------------------------------ *)
(* E6: solvability verdicts (Prop 3.1 / Cor 5.2)                        *)
(* ------------------------------------------------------------------ *)

let e6 () =
  section "E6  Proposition 3.1: solvability verdicts";
  Printf.printf "%-30s %8s %22s %12s\n" "task" "max b" "verdict" "nodes";
  let entry name task max_level =
    let verdict = Solvability.solve ~max_level task in
    let nodes = (Solvability.stats_of_verdict verdict).Solvability.nodes in
    let label =
      match verdict with
      | Solvability.Solvable { map; _ } ->
        Printf.sprintf "solvable at b=%d" map.Solvability.level
      | Solvability.Unsolvable_at { level = b; _ } -> Printf.sprintf "unsolvable (b<=%d)" b
      | Solvability.Exhausted { level; _ } -> Printf.sprintf "undecided at b=%d" level
    in
    Printf.printf "%-30s %8d %22s %12d\n" name max_level label nodes
  in
  entry "identity (3 procs)" (Instances.id_task ~procs:3) 1;
  entry "consensus (2 procs)" (Instances.binary_consensus ~procs:2) 3;
  entry "consensus (3 procs)" (Instances.binary_consensus ~procs:3) 1;
  entry "(2,1)-set consensus" (Instances.set_consensus ~procs:2 ~k:1) 2;
  entry "(3,2)-set consensus" (Instances.set_consensus ~procs:3 ~k:2) 1;
  entry "(3,3)-set consensus" (Instances.set_consensus ~procs:3 ~k:3) 1;
  entry "renaming (2 procs, 2 names)" (Instances.adaptive_renaming ~procs:2 ~names:2) 3;
  entry "renaming (2 procs, 3 names)" (Instances.adaptive_renaming ~procs:2 ~names:3) 2;
  entry "renaming (3 procs, 6 names)" (Instances.adaptive_renaming ~procs:3 ~names:6) 1;
  entry "eps-agreement grid 3" (Instances.approximate_agreement ~procs:2 ~grid:3) 2;
  entry "eps-agreement grid 9" (Instances.approximate_agreement ~procs:2 ~grid:9) 3;
  entry "eps-agreement 3 procs grid 2" (Instances.approximate_agreement ~procs:3 ~grid:2) 1;
  entry "(2,1)-test-and-set" (Instances.k_test_and_set ~procs:2 ~k:1) 2;
  entry "(2,2)-test-and-set" (Instances.k_test_and_set ~procs:2 ~k:2) 1;
  entry "(3,2)-test-and-set" (Instances.k_test_and_set ~procs:3 ~k:2) 1;
  entry "fetch&inc order (2 procs)" (Instances.fetch_and_increment_order ~procs:2) 2;
  entry "loop agreement on a disk" (Instances.loop_agreement_on_disk ()) 1;
  entry "loop agreement on a circle" (Instances.loop_agreement_on_circle ()) 2;
  entry "renaming x eps-agreement"
    (Task.product
       (Instances.adaptive_renaming ~procs:2 ~names:3)
       (Instances.approximate_agreement ~procs:2 ~grid:3))
    2;
  entry "renaming x consensus"
    (Task.product
       (Instances.adaptive_renaming ~procs:2 ~names:3)
       (Instances.binary_consensus ~procs:2))
    2;
  Printf.printf "\neps-agreement round complexity (2 procs): minimal b vs grid\n";
  Printf.printf "%8s %8s\n" "grid" "min b";
  List.iter
    (fun grid ->
      match Solvability.solve ~max_level:4 (Instances.approximate_agreement ~procs:2 ~grid) with
      | Solvability.Solvable { map; _ } -> Printf.printf "%8d %8d\n" grid map.Solvability.level
      | _ -> Printf.printf "%8d %8s\n" grid "?")
    [ 1; 2; 3; 4; 8; 9; 10; 27 ]

(* ------------------------------------------------------------------ *)
(* E7: Lemma 5.3 — minimal approximation levels                         *)
(* ------------------------------------------------------------------ *)

let e7 () =
  section "E7  Lemma 5.3: minimal k for a carrier-preserving map onto A";
  Printf.printf "%-16s %12s %12s\n" "target A" "Bsd^k" "SDS^k";
  List.iter
    (fun (name, target) ->
      let show scheme =
        match Approximation.min_level ~scheme ~target () with
        | Some (k, _) -> string_of_int k
        | None -> ">6"
      in
      Printf.printf "%-16s %12s %12s\n" name (show `Bsd) (show `Sds))
    [
      ("SDS(s^1)", Sds.subdiv (Sds.standard ~dim:1 ~levels:1));
      ("SDS^2(s^1)", Sds.subdiv (Sds.standard ~dim:1 ~levels:2));
      ("Bsd^2(s^1)", Subdivision.subdiv (Subdivision.iterate (Chromatic.standard_simplex 1) 2));
      ("SDS(s^2)", Sds.subdiv (Sds.standard ~dim:2 ~levels:1));
      ("Bsd(s^2)", Subdivision.subdiv (Subdivision.iterate (Chromatic.standard_simplex 2) 1));
    ];
  Printf.printf "\nmesh shrinkage (squared max edge length, exact rationals):\n";
  Printf.printf "%6s %16s %16s\n" "level" "SDS^b(s^2)" "Bsd^k(s^2)";
  List.iter
    (fun l ->
      let sds = Subdiv.mesh_sq (Sds.subdiv (Sds.standard ~dim:2 ~levels:l)) in
      let bsd =
        Subdiv.mesh_sq (Subdivision.subdiv (Subdivision.iterate (Chromatic.standard_simplex 2) l))
      in
      Printf.printf "%6d %16s %16s\n" l (Rat.to_string sds) (Rat.to_string bsd))
    [ 0; 1; 2; 3 ]

(* ------------------------------------------------------------------ *)
(* E8: Theorem 5.1 — chromatic convergence                              *)
(* ------------------------------------------------------------------ *)

let e8 () =
  section "E8  Theorem 5.1: chromatic simplex agreement (CSASS) end to end";
  Printf.printf "%-16s %8s %14s\n" "target A" "k" "validation";
  List.iter
    (fun (name, target) ->
      match Convergence.prepare target with
      | Some t ->
        let v = match Convergence.validate t with Ok () -> "OK" | Error _ -> "FAILED" in
        Printf.printf "%-16s %8d %14s\n" name t.Convergence.level v
      | None -> Printf.printf "%-16s %8s %14s\n" name "-" "no map")
    [
      ("SDS(s^1)", Sds.subdiv (Sds.standard ~dim:1 ~levels:1));
      ("SDS^2(s^1)", Sds.subdiv (Sds.standard ~dim:1 ~levels:2));
      ("SDS(s^2)", Sds.subdiv (Sds.standard ~dim:2 ~levels:1));
    ]

(* ------------------------------------------------------------------ *)
(* E9: Borowsky–Gafni immediate snapshot from atomic snapshots          *)
(* ------------------------------------------------------------------ *)

let e9 () =
  section "E9  [8] substrate: BG one-shot immediate snapshot from snapshots";
  List.iter
    (fun m ->
      let current = ref [] in
      let make () =
        current := [];
        Bg_is.actions_recording
          ~inputs:(Array.init m (fun i -> i))
          ~record:(fun i set _ -> current := (i, List.map fst set) :: !current)
      in
      let legal = ref 0 and total = ref 0 in
      ignore
        (Explore.explore ~max_runs:500_000 make (fun _ ->
             incr total;
             if Trace.check_immediate_snapshot !current = Ok () then incr legal));
      Printf.printf "m=%d: exhaustive %d schedules, %d legal immediate snapshots\n" m !total
        !legal)
    [ 2; 3 ];
  List.iter
    (fun m ->
      let legal = ref 0 in
      let trials = 300 in
      for seed = 0 to trials - 1 do
        let r = Bg_is.run ~inputs:(Array.init m (fun i -> i)) (Runtime.random ~seed ()) in
        if Trace.check_immediate_snapshot (Bg_is.views r) = Ok () then incr legal
      done;
      Printf.printf "m=%d: %d/%d random adversarial runs legal\n" m !legal trials)
    [ 4; 5; 6 ]

(* ------------------------------------------------------------------ *)
(* E10: Lemma 3.1 — decision bounds                                     *)
(* ------------------------------------------------------------------ *)

let e10 () =
  section "E10 Lemma 3.1: decision bounds from the execution tree";
  Printf.printf "%-34s %10s %10s %10s\n" "protocol" "runs" "bound" "depth";
  let entry name make =
    let r = Bounded.decision_bound make in
    Printf.printf "%-34s %10d %10d %10d\n" name r.Bounded.runs r.Bounded.bound r.Bounded.depth
  in
  entry "IS renaming, 2 procs" (fun () -> Protocols.is_renaming ~procs:2);
  entry "IS renaming, 3 procs" (fun () -> Protocols.is_renaming ~procs:3);
  entry "BG immediate snapshot, 2 procs" (fun () -> Bg_is.actions ~inputs:[| 0; 1 |]);
  entry "IIS full-info, 2 procs, 3 rounds" (fun () ->
      Full_information.iis_k_shot ~procs:2 ~k:3 ~inputs:[| 0; 1 |]);
  entry "averaging agreement, 2p 2r" (fun () ->
      Protocols.approximate_agreement ~procs:2 ~rounds:2 ~inputs:[| Rat.zero; Rat.one |])

(* ------------------------------------------------------------------ *)
(* E11: one-round atomic vs immediate snapshot complexes                *)
(* ------------------------------------------------------------------ *)

let e11 () =
  section "E11 one-round atomic snapshot complex strictly contains the IS complex";
  Printf.printf "%6s %14s %10s %14s %14s\n" "n+1" "atomic facets" "IS facets" "IS in atomic"
    "atomic in IS";
  List.iter
    (fun procs ->
      let pa = Protocol_complex.atomic ~procs ~rounds:1 in
      let pis = Protocol_complex.one_shot_is ~procs in
      Printf.printf "%6d %14d %10d %14b %14b\n" procs
        (Complex.num_facets (Chromatic.complex pa.Protocol_complex.chromatic))
        (Complex.num_facets (Chromatic.complex pis.Protocol_complex.chromatic))
        (Protocol_complex.is_subcomplex_of pis pa)
        (Protocol_complex.is_subcomplex_of pa pis))
    [ 2; 3 ]

(* ------------------------------------------------------------------ *)
(* E12: Sperner parity (set-consensus obstruction at any level)         *)
(* ------------------------------------------------------------------ *)

let e12 () =
  section "E12 Sperner parity on SDS^b(s^n): panchromatic facets are always odd";
  Printf.printf "%6s %6s %12s %14s %12s\n" "n" "b" "labelings" "all odd" "min count";
  List.iter
    (fun (n, b) ->
      let sds = Sds.standard ~dim:n ~levels:b in
      let all_odd = ref true and mincount = ref max_int in
      let trials = 100 in
      for seed = 0 to trials - 1 do
        let label = Sperner.random_sperner_labeling ~seed sds in
        let c = List.length (Sperner.panchromatic_facets sds ~label) in
        if c mod 2 = 0 then all_odd := false;
        if c < !mincount then mincount := c
      done;
      Printf.printf "%6d %6d %12d %14b %12d\n" n b trials !all_odd !mincount)
    [ (1, 2); (2, 1); (2, 2); (3, 1) ]

(* ------------------------------------------------------------------ *)
(* E13: fill-ins and two-process NCSAC (section 5 building blocks)      *)
(* ------------------------------------------------------------------ *)

let e13 () =
  section "E13 fill-ins and two-process simplex agreement (NCSAC base case)";
  (* 0-sphere fill-ins: paths in the skeleton of SDS^b(s^2) *)
  Printf.printf "%-22s %10s %10s\n" "complex" "diameter" "rounds";
  List.iter
    (fun (name, cx) ->
      Printf.printf "%-22s %10d %10d\n" name (Fillin.diameter cx) (Ncsac.rounds_needed cx))
    [
      ("SDS(s^2) skeleton", Chromatic.complex (Sds.complex (Sds.standard ~dim:2 ~levels:1)));
      ("SDS^2(s^2) skeleton", Chromatic.complex (Sds.complex (Sds.standard ~dim:2 ~levels:2)));
      ("path of 16 edges", Complex.of_facets (List.init 16 (fun i -> [ i; i + 1 ])));
    ];
  (* 1-sphere fill-in: the boundary of SDS(s^2) bounds the whole disk *)
  let cx = Chromatic.complex (Sds.complex (Sds.standard ~dim:2 ~levels:1)) in
  let b = Option.get (Complex.boundary cx) in
  let next = Hashtbl.create 16 in
  List.iter
    (fun e ->
      match Simplex.to_list e with
      | [ a; b' ] ->
        let add x y =
          let l = try Hashtbl.find next x with Not_found -> [] in
          Hashtbl.replace next x (y :: l)
        in
        add a b';
        add b' a
      | _ -> ())
    (Complex.facets b);
  let start = List.hd (Complex.vertices b) in
  let rec walk prev v acc =
    let n = List.find (fun x -> x <> prev) (Hashtbl.find next v) in
    if n = start then List.rev acc else walk v n (n :: acc)
  in
  let cycle = walk (-1) start [ start ] in
  (match Fillin.fill_cycle cx cycle with
  | Some d ->
    Printf.printf "\nboundary 9-cycle of SDS(s^2): fill-in with %d triangles (disk = 13)\n"
      (Complex.num_facets d)
  | None -> Printf.printf "\nboundary cycle: NO FILL-IN (unexpected)\n");
  (* distributed two-process convergence over random adversaries *)
  let sk = Chromatic.complex (Sds.complex (Sds.standard ~dim:2 ~levels:2)) in
  let vs = Complex.vertices sk in
  let a = List.hd vs and bb = List.nth vs (List.length vs - 1) in
  let verdict =
    match Ncsac.validate sk ~inputs:(a, bb) with Ok () -> "validated" | Error e -> e
  in
  Printf.printf
    "two-process convergence on SDS^2(s^2) skeleton (30 seeds, crashes, solos): %s\n" verdict

(* ------------------------------------------------------------------ *)
(* E14: adversary structure vs emulation cost                           *)
(* ------------------------------------------------------------------ *)

let e14 () =
  section "E14 adversary structure vs Figure-2 emulation cost (n+1=3, k=2)";
  Printf.printf "%-26s %12s %14s %10s\n" "adversary" "memories" "writereads/p" "atomic";
  let spec = Emulation.full_information_spec ~procs:3 ~k:2 in
  let show name strategy_of =
    let trials = 20 in
    let mem = ref 0 and wr = ref 0 and ok = ref 0 in
    for seed = 0 to trials - 1 do
      let r = Emulation.run spec (strategy_of seed) in
      mem := !mem + r.Emulation.cost.Emulation.memories;
      wr := !wr + Array.fold_left ( + ) 0 r.Emulation.cost.Emulation.write_reads;
      if Emulation.check r = Ok () then incr ok
    done;
    Printf.printf "%-26s %12.1f %14.1f %7d/%d\n" name
      (float_of_int !mem /. float_of_int trials)
      (float_of_int !wr /. float_of_int (trials * 3))
      !ok trials
  in
  show "round robin" (fun _ -> Runtime.round_robin ());
  show "random" (fun seed -> Runtime.random ~seed ());
  show "isolating (victim 0)" (fun _ -> Runtime.isolating ~victim:0 ());
  show "random + crash" (fun seed -> Runtime.random_with_crashes ~seed ~crash:[ seed mod 3 ] ())

(* ------------------------------------------------------------------ *)
(* E16: exact two-process verdicts (all levels at once)                 *)
(* ------------------------------------------------------------------ *)

let e16 () =
  section "E16 exact two-process decidability (connectivity, every level at once)";
  Printf.printf "%-30s %-28s %10s\n" "task" "exact verdict" "agrees";
  let entry name t =
    let verdict =
      match Decidability.two_process t with
      | Decidability.Solvable_at b -> Printf.sprintf "solvable at b=%d" b
      | Decidability.Unsolvable -> "unsolvable at EVERY level"
    in
    Printf.printf "%-30s %-28s %10b\n" name verdict (Decidability.agrees_with_search t)
  in
  entry "consensus" (Instances.binary_consensus ~procs:2);
  entry "(2,1)-test-and-set" (Instances.k_test_and_set ~procs:2 ~k:1);
  entry "renaming, 2 names" (Instances.adaptive_renaming ~procs:2 ~names:2);
  entry "renaming, 3 names" (Instances.adaptive_renaming ~procs:2 ~names:3);
  entry "fetch&inc order" (Instances.fetch_and_increment_order ~procs:2);
  entry "eps-agreement grid 9" (Instances.approximate_agreement ~procs:2 ~grid:9);
  entry "eps-agreement grid 27" (Instances.approximate_agreement ~procs:2 ~grid:27);
  entry "identity" (Instances.id_task ~procs:2)

(* ------------------------------------------------------------------ *)
(* E15: the BG simulation (resiliency technology of [10, 11])           *)
(* ------------------------------------------------------------------ *)

let e15 () =
  section "E15 BG simulation: s simulators run an m-process snapshot protocol";
  Printf.printf "%6s %6s %6s %10s %12s %14s %10s\n" "sims" "m" "k" "complete" "agreements"
    "ops/simulator" "legal";
  List.iter
    (fun (s, m, k) ->
      let spec = Bg_simulation.full_information_spec ~procs:m ~k in
      let trials = 15 in
      let complete = ref 0 and agreements = ref 0 and ops = ref 0 and legal = ref 0 in
      for seed = 0 to trials - 1 do
        let r = Bg_simulation.run ~simulators:s spec (Runtime.random ~seed ()) in
        complete :=
          !complete + Array.fold_left (fun a b -> if b then a + 1 else a) 0 r.Bg_simulation.completed;
        agreements := !agreements + r.Bg_simulation.cost.Bg_simulation.agreements;
        ops := !ops + Array.fold_left ( + ) 0 r.Bg_simulation.cost.Bg_simulation.simulator_ops;
        if Bg_simulation.check spec r = Ok () then incr legal
      done;
      Printf.printf "%6d %6d %6d %10.1f %12.1f %14.1f %7d/%d\n" s m k
        (float_of_int !complete /. float_of_int trials)
        (float_of_int !agreements /. float_of_int trials)
        (float_of_int !ops /. float_of_int (trials * s))
        !legal trials)
    [ (2, 2, 2); (2, 3, 2); (2, 3, 4); (3, 4, 2); (3, 5, 2); (4, 5, 2) ];
  (* the resiliency headline: one simulator crash, at least m-1 complete *)
  Printf.printf "\nwith one crashed simulator (2 sims, 3 procs, k=2):\n";
  let spec = Bg_simulation.full_information_spec ~procs:3 ~k:2 in
  let min_complete = ref max_int and legal = ref 0 in
  let trials = 30 in
  for seed = 0 to trials - 1 do
    let r =
      Bg_simulation.run ~simulators:2 spec
        (Runtime.random_with_crashes ~seed ~crash:[ seed mod 2 ] ())
    in
    let c = Array.fold_left (fun a b -> if b then a + 1 else a) 0 r.Bg_simulation.completed in
    if c < !min_complete then min_complete := c;
    if Bg_simulation.check spec r = Ok () then incr legal
  done;
  Printf.printf "min completed = %d (guarantee >= %d), legal histories %d/%d\n" !min_complete
    (Bg_simulation.min_completed ~simulators:2 ~crashed:1 spec)
    !legal trials

(* ------------------------------------------------------------------ *)
(* bechamel micro-benchmarks                                            *)
(* ------------------------------------------------------------------ *)

let micro () =
  section "micro-benchmarks (bechamel, monotonic clock)";
  let open Bechamel in
  let open Toolkit in
  let tests =
    [
      Test.make ~name:"sds: build SDS^1(s^2)"
        (Staged.stage (fun () -> ignore (Sds.standard ~dim:2 ~levels:1)));
      Test.make ~name:"sds: build SDS^2(s^2)"
        (Staged.stage (fun () -> ignore (Sds.standard ~dim:2 ~levels:2)));
      Test.make ~name:"bsd: build Bsd^2(s^2)"
        (Staged.stage (fun () -> ignore (Subdivision.iterate (Chromatic.standard_simplex 2) 2)));
      Test.make ~name:"homology: betti SDS^2(s^2)"
        (let cx = Chromatic.complex (Sds.complex (Sds.standard ~dim:2 ~levels:2)) in
         Staged.stage (fun () -> ignore (Homology.reduced_betti cx)));
      Test.make ~name:"model: one-shot IS complex (3 procs)"
        (Staged.stage (fun () -> ignore (Protocol_complex.one_shot_is ~procs:3)));
      Test.make ~name:"emulation: n=3 k=2 random run"
        (Staged.stage (fun () ->
             ignore
               (Emulation.run
                  (Emulation.full_information_spec ~procs:3 ~k:2)
                  (Runtime.random ~seed:1 ()))));
      Test.make ~name:"solvability: renaming(2,3) at b=1"
        (let task = Instances.adaptive_renaming ~procs:2 ~names:3 in
         Staged.stage (fun () -> ignore (Solvability.solve_at task 1)));
      Test.make ~name:"solvability: consensus(2) UNSAT at b=2"
        (let task = Instances.binary_consensus ~procs:2 in
         Staged.stage (fun () -> ignore (Solvability.solve_at task 2)));
      Test.make ~name:"bg-is: 4 procs random run"
        (Staged.stage (fun () ->
             ignore (Bg_is.run ~inputs:[| 0; 1; 2; 3 |] (Runtime.random ~seed:2 ()))));
      Test.make ~name:"approximation: SDS^1 -> SDS(s^2)"
        (let target = Sds.subdiv (Sds.standard ~dim:2 ~levels:1) in
         let source = Sds.subdiv (Sds.standard ~dim:2 ~levels:1) in
         Staged.stage (fun () -> ignore (Approximation.approximate ~source ~target)));
      Test.make ~name:"sperner: label + count SDS^2(s^2)"
        (let sds = Sds.standard ~dim:2 ~levels:2 in
         Staged.stage (fun () ->
             let label = Sperner.random_sperner_labeling ~seed:3 sds in
             ignore (Sperner.panchromatic_facets sds ~label)));
      Test.make ~name:"runtime: IIS full-info 3 procs 3 rounds"
        (Staged.stage (fun () ->
             ignore
               (Runtime.run
                  (Full_information.iis_k_shot ~procs:3 ~k:3 ~inputs:[| 0; 1; 2 |])
                  (Runtime.random ~seed:4 ()))));
    ]
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  Printf.printf "%-44s %16s\n" "benchmark" "time/run";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analysis = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
            let pretty =
              if est > 1e9 then Printf.sprintf "%.2f s" (est /. 1e9)
              else if est > 1e6 then Printf.sprintf "%.2f ms" (est /. 1e6)
              else if est > 1e3 then Printf.sprintf "%.2f us" (est /. 1e3)
              else Printf.sprintf "%.0f ns" est
            in
            Printf.printf "%-44s %16s\n" name pretty
          | _ -> Printf.printf "%-44s %16s\n" name "n/a")
        analysis)
    tests

(* ------------------------------------------------------------------ *)
(* timed scenarios (--json FILE): machine-readable perf trajectory      *)
(* ------------------------------------------------------------------ *)

let emulation_sweep ~sink () =
  let spec = Emulation.full_information_spec ~procs:3 ~k:4 in
  for seed = 0 to 29 do
    ignore (Emulation.run ~sink ~show:Fun.id spec (Runtime.random ~seed ()))
  done

(* Each scenario is a thunk returning (search nodes, verdict), both optional.
   Timed cold: every per-run cache that survives across calls is cleared
   first so the JSON numbers track the representation, not the memo. *)

(* A scenario whose thunk repeats its hot section and wants the report to
   carry a noise-robust statistic (a median of repeats, excluding setup)
   rather than the single external wall-clock sets this from inside the
   thunk; run_scenarios consumes and clears it around every scenario. The
   serve warm pair uses it: serve_warm_logged carries a <=5% overhead
   budget relative to serve_warm, which a one-shot measurement on a busy
   single-core container cannot resolve — one scheduling spike inside
   either run reads as a 30% swing. *)
let self_timed : float option ref = ref None

(* Extra per-scenario JSON fields (latency percentiles, op counts) set from
   inside a thunk, merged into the scenario object by run_scenarios. The
   storage scenarios use it: one store operation is microseconds, far below
   what a single external wall-clock resolves, so they report p50/p95 over
   thousands of timed ops instead. *)
let self_extra : (string * Wfc_obs.Json.t) list ref = ref []

(* --quick (set from main before the scenarios run) trims the repeat counts
   of the self-timed scenarios: CI wants the schema and the smoke numbers,
   not the noise-floor statistics the committed BENCH_wfc.json carries *)
let quick_scenarios = ref false

let scenarios : (string * (unit -> int option * string option)) list =
  let solved v =
    let s = Solvability.stats_of_verdict v in
    (Some s.Solvability.nodes, Some (Solvability.verdict_name v))
  in
  let solv task level = fun () -> solved (Solvability.solve_at task level) in
  let solve_up task max_level = fun () -> solved (Solvability.solve ~max_level task) in
  let plain thunk = fun () -> thunk (); (None, None) in
  (* The level-1 refutation is ~60 nodes, far below timer resolution, so it
     is repeated; the first call warms the subdivision memo, the remaining
     reps time the search engine alone. Every domain setting performs the
     exact same node count (stats are equal by construction, see test_par),
     so the wall-clock ratio across solve_domains_* is a clean speedup. *)
  let solve_rep ?mode ?model ?symmetry ?collapse ~domains ~reps task level = fun () ->
    let opts = Solvability.options ?mode ?model ?symmetry ?collapse () in
    let v = ref (Solvability.solve_at ~opts ~domains task level) in
    for _ = 2 to reps do v := Solvability.solve_at ~opts ~domains task level done;
    solved !v
  in
  (* SDS^4(s^2) rebuilt cold: subdivision fans the facets of each level
     across the pool, the sharded arena interns from all domains at once. *)
  let sds_par domains = plain (fun () ->
    Wfc_par.set_domains domains;
    Fun.protect ~finally:(fun () -> Wfc_par.set_domains 1)
      (fun () -> ignore (Sds.standard ~dim:2 ~levels:4)))
  in
  (* Daemon round-trips: cold is one store-miss query (solve + persist +
     wire, lifecycle included), warm is the best of five fresh-daemon
     200-request store-hit loops (self-timed — startup and the priming
     query excluded), coalesced is 8 concurrent identical queries of which
     exactly one may compute.

     Why best-of-five across daemon *restarts* for the warm pair: on a
     busy single-core container a daemon's whole lifetime can land in a
     degraded scheduling mode (~2 ms extra per round-trip, persisting
     until the threads are torn down), so repeats inside one daemon all
     inherit the same weather and a median cannot escape it. The minimum
     over independent daemons estimates the cost of the code path itself,
     which is what serve_warm_logged's <=5% overhead budget is about. *)
  let serve ?(log = false) mode = fun () ->
    (* drop the domain pool earlier scenarios grew: parked worker domains
       make every minor collection a multi-domain stop-the-world, which
       taxes allocation on the serving path in a way a real daemon process
       (pool grown only while a solve is in flight) never sees — with it
       parked, the warm pair's logging delta reads as ~2x its true cost *)
    Wfc_par.shutdown ();
    let spec =
      {
        Wfc_serve.Wire.task = "set-consensus";
        procs = 3;
        param = 2;
        max_level = 1;
        model = "wait-free";
        symmetry = true;
        collapse = true;
      }
    in
    (* one daemon lifecycle: set up socket/store/log, run [f ask], tear
       everything down; with [log], a full event log at debug level — the
       serve_warm_logged / serve_warm pair measures what telemetry
       writing costs per request *)
    let with_daemon f =
      let socket = Filename.temp_file "wfc-bench" ".sock" in
      Sys.remove socket;
      let store_dir = Filename.temp_file "wfc-bench-store" "" in
      Sys.remove store_dir;
      Unix.mkdir store_dir 0o755;
      let log_file = if log then Some (Filename.temp_file "wfc-bench" ".log") else None in
      let ready = Atomic.make false in
      let cfg =
        {
          (Wfc_serve.Daemon.config ?log:log_file ~log_level:Wfc_obs.Log.Debug ~socket
             ~store_dir ())
          with
          Wfc_serve.Daemon.on_ready = Some (fun () -> Atomic.set ready true);
        }
      in
      let daemon = Thread.create Wfc_serve.Daemon.run cfg in
      while not (Atomic.get ready) do
        Thread.yield ()
      done;
      let ask () =
        match Wfc_serve.Client.connect ~socket with
        | Error e -> failwith e
        | Ok c ->
          let r = Wfc_serve.Client.query c spec in
          Wfc_serve.Client.close c;
          (match r with
          | Ok (Wfc_serve.Wire.Verdict { record; _ }) -> record
          | _ -> failwith "bench query did not return a verdict")
      in
      let result = f ask in
      (match Wfc_serve.Client.connect ~socket with
      | Ok c ->
        ignore (Wfc_serve.Client.shutdown c);
        Wfc_serve.Client.close c
      | Error _ -> ());
      Thread.join daemon;
      (match log_file with Some f -> (try Sys.remove f with Sys_error _ -> ()) | None -> ());
      result
    in
    let record =
      match mode with
      | `Cold -> with_daemon (fun ask -> ask ())
      | `Warm ->
        let one_daemon () =
          (* every repeat starts from an identical GC state: with the live
             heap earlier scenarios accumulated, the incremental major cycle
             otherwise falls behind across repeats (promotion debt), and
             whichever scenario of the warm pair runs later inherits the
             bigger heap and reads slower for reasons that have nothing to
             do with logging *)
          Gc.compact ();
          with_daemon (fun ask ->
              let r = ref (ask ()) in
              let t0 = Wfc_obs.Metrics.now_s () in
              for _ = 1 to 200 do
                r := ask ()
              done;
              (Wfc_obs.Metrics.now_s () -. t0, !r))
        in
        let reps = if !quick_scenarios then 2 else 5 in
        let runs = List.init reps (fun _ -> one_daemon ()) in
        self_timed := Some (List.fold_left (fun acc (s, _) -> min acc s) infinity runs);
        snd (List.hd runs)
      | `Coalesced ->
        with_daemon (fun ask ->
            let results = Array.make 8 None in
            let ts =
              Array.init 8 (fun i -> Thread.create (fun i -> results.(i) <- Some (ask ())) i)
            in
            Array.iter Thread.join ts;
            Option.get results.(0))
    in
    let o = record.Wfc_serve.Store.outcome in
    (Some o.Solvability.o_nodes, Some o.Solvability.o_verdict)
  in
  (* Storage engine at scale: a store seeded with 10k records (500 under
     --quick), then per-op latency distributions for the three tiers of a
     lookup (fresh put / cold disk read / LRU hit) and the manifest-backed
     ls. The scenario's [seconds] is the whole timed loop; p50/p95 of the
     individual ops ride in the extra fields. The seeded store is built
     once and shared by the four scenarios (it is read-only for the gets
     and ls; puts use fresh digests). *)
  let store_count () = if !quick_scenarios then 500 else 10_000 in
  let store_ops () = if !quick_scenarios then 100 else 1_000 in
  let seeded_store : Wfc_serve.Store.t option ref = ref None in
  let store_env () =
    match !seeded_store with
    | Some st -> st
    | None ->
      let dir = Filename.temp_file "wfc-bench-store10k" "" in
      Sys.remove dir;
      Unix.mkdir dir 0o755;
      let st = Wfc_serve.Store.open_store dir in
      Wfc_storage.Engine.seed (Wfc_serve.Store.engine st) ~count:(store_count ());
      seeded_store := Some st;
      st
  in
  let seed_digest i = Digest.to_hex (Digest.string (Printf.sprintf "wfc-seed-%d" i)) in
  let percentiles samples =
    let a = Array.of_list samples in
    Array.sort compare a;
    let at p = a.(min (Array.length a - 1) (int_of_float (p *. float_of_int (Array.length a)))) in
    (at 0.50, at 0.95)
  in
  (* time [f] over [n] ops, publish total as the scenario time and the
     per-op p50/p95 (plus the store scale) as extra fields *)
  let timed_ops ?(extra = []) n f = fun () ->
    let samples = ref [] in
    let t0 = Wfc_obs.Metrics.now_s () in
    for i = 0 to n - 1 do
      let s0 = Wfc_obs.Metrics.now_s () in
      f i;
      samples := (Wfc_obs.Metrics.now_s () -. s0) :: !samples
    done;
    self_timed := Some (Wfc_obs.Metrics.now_s () -. t0);
    let p50, p95 = percentiles !samples in
    self_extra :=
      [
        ("ops", Wfc_obs.Json.Int n);
        ("records", Wfc_obs.Json.Int (store_count ()));
        ("latency_p50_s", Wfc_obs.Json.Float p50);
        ("latency_p95_s", Wfc_obs.Json.Float p95);
      ]
      @ extra;
    (None, None)
  in
  let store_put = fun () ->
    let st = store_env () in
    let eng = Wfc_serve.Store.engine st in
    timed_ops (store_ops ()) (fun i ->
        let digest = Digest.to_hex (Digest.string (Printf.sprintf "bench-put-%d" i)) in
        Wfc_storage.Engine.put eng
          {
            Wfc_storage.Record.digest;
            task = Printf.sprintf "bench(procs=2,param=%d)" i;
            model = "wait-free";
            procs = 2;
            max_level = 1;
            budget = 5_000_000;
            outcome =
              {
                Solvability.o_verdict = "unsolvable";
                o_level = 1;
                o_nodes = i;
                o_backtracks = 0;
                o_prunes = 0;
                o_elapsed = 0.001;
                o_decide = [];
              };
            created_at = float_of_int i;
          }) ()
  in
  let store_get ~warm = fun () ->
    let st = store_env () in
    (* a cold get must hit the disk: a fresh handle has an empty LRU, and
       every op asks a distinct digest so no op warms the next. A cached
       get asks the same digests through a handle that just read them all
       (cap 4096 >= ops), so every op is an LRU hit. *)
    let eng = Wfc_storage.Engine.open_store (Wfc_serve.Store.dir st) in
    let ask i =
      ignore
        (Wfc_storage.Engine.find eng ~digest:(seed_digest i) ~model:"wait-free"
           ~max_level:(i mod 3) ~budget:5_000_000)
    in
    if warm then
      for i = 0 to store_ops () - 1 do
        ask i
      done;
    timed_ops (store_ops ()) ask ()
  in
  let store_ls = fun () ->
    let st = store_env () in
    let eng = Wfc_serve.Store.engine st in
    let reps = if !quick_scenarios then 5 else 20 in
    timed_ops
      ~extra:[ ("entries", Wfc_obs.Json.Int (List.length (Wfc_storage.Engine.ls eng))) ]
      reps
      (fun _ -> ignore (Wfc_storage.Engine.ls eng))
      ()
  in
  (* Persisted-skeleton reuse: SDS^3(s^2) built cold from nothing vs cold
     from the skeleton keyspace (memo cleared both times — "cold" means a
     new process, not a new store). The replay skips the enumeration
     search and should win by an integer factor; both times ride in the
     extra fields, [seconds] is the replay. *)
  let sds_skeleton_reuse = fun () ->
    let dir = Filename.temp_file "wfc-bench-skel" "" in
    Sys.remove dir;
    Unix.mkdir dir 0o755;
    let st = Wfc_serve.Store.open_store dir in
    Sds.clear_cache ();
    let t0 = Wfc_obs.Metrics.now_s () in
    ignore (Sds.standard ~dim:2 ~levels:3);
    let cold_s = Wfc_obs.Metrics.now_s () -. t0 in
    Wfc_serve.Store.attach_skeletons st;
    Fun.protect
      ~finally:(fun () -> Sds.set_skeleton_store None)
      (fun () ->
        (* populate the keyspace, then replay it from a cleared memo *)
        Sds.clear_cache ();
        ignore (Sds.standard ~dim:2 ~levels:3);
        Sds.clear_cache ();
        let t1 = Wfc_obs.Metrics.now_s () in
        ignore (Sds.standard ~dim:2 ~levels:3);
        let replay_s = Wfc_obs.Metrics.now_s () -. t1 in
        self_timed := Some replay_s;
        self_extra :=
          [
            ("cold_s", Wfc_obs.Json.Float cold_s);
            ("replay_s", Wfc_obs.Json.Float replay_s);
          ];
        (None, None))
  in
  [
    ("sds_iterate_s2_l3", plain (fun () -> ignore (Sds.standard ~dim:2 ~levels:3)));
    ("sds_iterate_s2_l4", plain (fun () -> ignore (Sds.standard ~dim:2 ~levels:4)));
    ("sds_iterate_s3_l2", plain (fun () -> ignore (Sds.standard ~dim:3 ~levels:2)));
    ( "sds_closure_f_vector_s2_l3",
      plain (fun () ->
          let cx = Chromatic.complex (Sds.complex (Sds.standard ~dim:2 ~levels:3)) in
          ignore (Complex.f_vector cx)) );
    ( "drop_non_maximal_sds_s2_l3",
      plain (fun () ->
          let cx = Chromatic.complex (Sds.complex (Sds.standard ~dim:2 ~levels:3)) in
          (* rebuild a complex from the full closure: stress-tests maximality
             filtering on ~46k simplices *)
          ignore (Complex.of_simplices (Complex.simplices cx))) );
    ("solvability_renaming_3_6_l3", solv (Instances.adaptive_renaming ~procs:3 ~names:6) 3);
    ("solvability_set_consensus_3_3_l4", solv (Instances.set_consensus ~procs:3 ~k:3) 4);
    ("solvability_consensus_2_unsat_l4", solv (Instances.binary_consensus ~procs:2) 4);
    ( "solvability_eps_agreement_grid27",
      solve_up (Instances.approximate_agreement ~procs:2 ~grid:27) 5 );
    ( "protocol_complex_iis_3_r2",
      plain (fun () -> ignore (Protocol_complex.iis ~procs:3 ~rounds:2)) );
    (* trace sink overhead: the same 30 seeded emulation runs with recording
       off, bounded (the always-on flight recorder), and full (replayable
       wfc.trace.v1 stream). Ring must stay within a few percent of off. *)
    ("emulation_trace_off", plain (fun () -> emulation_sweep ~sink:Runtime.Off ()));
    ("emulation_trace_ring", plain (fun () -> emulation_sweep ~sink:(Runtime.Ring 4096) ()));
    ("emulation_trace_full", plain (fun () -> emulation_sweep ~sink:Runtime.Full ()));
    (* parallel speedup curve: identical workloads on 1/2/4 domains *)
    ("solve_domains_1", solve_rep ~domains:1 ~reps:200 (Instances.set_consensus ~procs:3 ~k:2) 1);
    ("solve_domains_2", solve_rep ~domains:2 ~reps:200 (Instances.set_consensus ~procs:3 ~k:2) 1);
    ("solve_domains_4", solve_rep ~domains:4 ~reps:200 (Instances.set_consensus ~procs:3 ~k:2) 1);
    (* portfolio race on the same workload: whole-search racers instead of
       one split search; same verdict, cost = the winning racer's *)
    ( "solve_portfolio_1",
      solve_rep ~mode:`Portfolio ~domains:1 ~reps:200 (Instances.set_consensus ~procs:3 ~k:2) 1 );
    ( "solve_portfolio_2",
      solve_rep ~mode:`Portfolio ~domains:2 ~reps:200 (Instances.set_consensus ~procs:3 ~k:2) 1 );
    ( "solve_portfolio_4",
      solve_rep ~mode:`Portfolio ~domains:4 ~reps:200 (Instances.set_consensus ~procs:3 ~k:2) 1 );
    (* model-restricted solving: the k-set affine task of the same workload.
       The restriction filters facets before the instance is built, so this
       tracks both the predicate cost and the smaller search space. *)
    ( "solve_kset_affine",
      solve_rep
        ~model:(Wfc_tasks.Model.k_set_affine ~k:2)
        ~domains:1 ~reps:200
        (Instances.set_consensus ~procs:3 ~k:2)
        1 );
    (* search reducers (DESIGN §14) on the same level-1 refutation: the
       seed engine with both reducers off is the before picture, then each
       reducer alone, then the composition (the default engine everywhere
       else in this file). Node counts are the point — the refutation must
       shrink while the verdict JSON stays byte-identical (ci.sh cmp's
       them); wall-clock on a ~60-node search is repeated noise-floor. *)
    ( "solve_no_reducers",
      solve_rep ~symmetry:false ~collapse:false ~domains:1 ~reps:200
        (Instances.set_consensus ~procs:3 ~k:2) 1 );
    ( "solve_symmetry",
      solve_rep ~symmetry:true ~collapse:false ~domains:1 ~reps:200
        (Instances.set_consensus ~procs:3 ~k:2) 1 );
    ( "solve_collapse",
      solve_rep ~symmetry:false ~collapse:true ~domains:1 ~reps:200
        (Instances.set_consensus ~procs:3 ~k:2) 1 );
    ( "solve_both",
      solve_rep ~symmetry:true ~collapse:true ~domains:1 ~reps:200
        (Instances.set_consensus ~procs:3 ~k:2) 1 );
    ("sds_iterate_domains_1", sds_par 1);
    ("sds_iterate_domains_2", sds_par 2);
    ("sds_iterate_domains_4", sds_par 4);
    (* verdict daemon: cold miss vs warm store hits vs coalesced burst;
       serve_warm_logged is serve_warm with the debug event log on — the
       pair bounds the per-request cost of telemetry writing *)
    ("serve_cold", serve `Cold);
    ("serve_warm", serve `Warm);
    ("serve_warm_logged", serve ~log:true `Warm);
    ("serve_coalesced", serve `Coalesced);
    (* storage engine at 10k records: the three lookup tiers and the
       manifest-backed ls, per-op p50/p95 in the extra fields *)
    ("store_put", store_put);
    ("store_get_cold", store_get ~warm:false);
    ("store_get_cached", store_get ~warm:true);
    ("store_ls_10k", store_ls);
    ("sds_skeleton_reuse", sds_skeleton_reuse);
  ]

let run_scenarios ?only () =
  section "timed scenarios";
  (* metrics restart here so the report's counters cover exactly these runs *)
  Wfc_obs.Metrics.reset ();
  Printf.printf "%-36s %12s %12s\n" "scenario" "seconds" "nodes";
  let selected =
    match only with
    | None -> scenarios
    | Some subs ->
      let subs = String.split_on_char ',' subs in
      let contains sname sub =
        let n = String.length sub in
        let rec at i = i + n <= String.length sname && (String.sub sname i n = sub || at (i + 1)) in
        at 0
      in
      List.filter (fun (sname, _) -> List.exists (contains sname) subs) scenarios
  in
  List.map
    (fun (sname, thunk) ->
      Sds.clear_cache ();
      (* heap state inherited from earlier scenarios otherwise dominates the
         small ones: a major slice landing inside a 3 ms scenario reads as a
         2x swing. Compact so every scenario starts from the same GC phase. *)
      Gc.compact ();
      self_timed := None;
      self_extra := [];
      let t0 = Wfc_obs.Metrics.now_s () in
      let nodes, verdict = thunk () in
      let external_s = Wfc_obs.Metrics.now_s () -. t0 in
      let seconds = match !self_timed with Some s -> s | None -> external_s in
      Printf.printf "%-36s %12.4f %12s\n%!" sname seconds
        (match nodes with Some n -> string_of_int n | None -> "-");
      Wfc_obs.Report.scenario ?nodes ?verdict ~extra:!self_extra sname seconds)
    selected

let write_json file results =
  Wfc_obs.Report.write_file file
    (Wfc_obs.Report.to_json
       ~machine:(Wfc_obs.Report.machine_facts ())
       ~snapshot:(Wfc_obs.Snapshot.take ())
       results);
  Printf.printf "\nwrote %s\n" file

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "quick" args || List.mem "--quick" args in
  quick_scenarios := quick;
  let json_file =
    let rec find = function
      | [ "--json" ] ->
        prerr_endline "bench: --json requires a FILE argument";
        exit 2
      | "--json" :: file :: _ -> Some file
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  (* --only SUBS (comma-separated substrings) restricts the timed scenarios
     to names containing any of them, and skips the experiments — for
     iterating on one scenario family without paying for the whole suite *)
  let only =
    let rec find = function
      | [ "--only" ] ->
        prerr_endline "bench: --only requires a SUBSTRING argument";
        exit 2
      | "--only" :: sub :: _ -> Some sub
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  let experiments = (json_file = None && only = None) || List.mem "--experiments" args in
  if experiments then begin
    e1 ();
    e2 ();
    e3_e4 ();
    e5 ();
    e6 ();
    e7 ();
    e8 ();
    e9 ();
    e10 ();
    e11 ();
    e12 ();
    e13 ();
    e14 ();
    e15 ();
    e16 ()
  end;
  (match (json_file, only) with
  | Some file, _ -> write_json file (run_scenarios ?only ())
  | None, Some _ -> ignore (run_scenarios ?only ())
  | None, None -> ());
  if (not quick) && json_file = None && only = None then micro ();
  print_endline "\nall experiments complete."
