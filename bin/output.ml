(* The one output path for wfc subcommands.

   Every subcommand that does measurable work threads its results through
   [emit]: [--stats] renders the Wfc_obs snapshot as text, [--json FILE]
   writes a wfc.obs.v1 report — the same schema bench/main.exe --json
   emits, so CI validates both with one checker. *)

open Cmdliner

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:"Print the collected metrics (counters, timers, spans) after the run.")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE" ~doc:"Write a wfc.obs.v1 JSON report to $(docv).")

let timed f =
  let t0 = Wfc_obs.Metrics.now_s () in
  let x = f () in
  (x, Wfc_obs.Metrics.now_s () -. t0)

let emit ~stats ~json scenarios =
  let snap = Wfc_obs.Snapshot.take () in
  if stats then print_string (Wfc_obs.Snapshot.to_text snap);
  match json with
  | None -> ()
  | Some path ->
    Wfc_obs.Report.write_file path (Wfc_obs.Report.to_json ~snapshot:snap scenarios);
    Format.printf "wrote %s@." path
