(* wfc — command-line explorer for wait-free computability.

   Subcommands mirror the paper's artifacts: subdivisions and their geometry
   (§2, §3.6), protocol complexes by execution (§3), the Figure-2 emulation
   (§4), task solvability (Prop 3.1), and convergence/approximation (§5).

   Output is unified through [Output]: subcommands that do measurable work
   accept [--stats] (print the Wfc_obs metrics) and [--json FILE] (write a
   wfc.obs.v1 report, same schema as bench/main.exe --json).

   Exit codes: 0 = clean verdict (including "unsolvable" — a completed
   exhaustive search is a successful answer), 3 = search budget exhausted
   (no verdict), 1/124/125 = cmdliner's usual failures. *)

open Cmdliner
open Wfc_topology
open Wfc_model
open Wfc_tasks
open Wfc_core

let exit_exhausted = 3

(* ---------- shared arguments ---------- *)

let dim_arg =
  Arg.(value & opt int 2 & info [ "n"; "dim" ] ~docv:"N" ~doc:"Dimension of the base simplex.")

let levels_arg =
  Arg.(value & opt int 1 & info [ "b"; "levels" ] ~docv:"B" ~doc:"Subdivision / round count.")

let procs_arg =
  Arg.(value & opt int 3 & info [ "p"; "procs" ] ~docv:"P" ~doc:"Number of processes.")

let seed_arg = Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc:"Adversary seed.")

(* --domains N > 1 turns on the Wfc_par worker pool for the solvability
   search and SDS subdivision; results are identical to the sequential
   engine. Default comes from WFC_DOMAINS (1 when unset). *)
let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"D"
        ~doc:
          "Run the search / subdivision on $(docv) domains (default: the WFC_DOMAINS \
           environment variable, else 1 = sequential). Results are independent of $(docv).")

let apply_domains = function Some d -> Wfc_par.set_domains d | None -> ()

(* ---------- trace plumbing shared by emulate / simulate / trace / replay ---------- *)

let exit_unknown_schema = 4

let emulation_protocol = "emulation.full-info"

(* The runtime runs over the simulators; the simulated-process count rides
   in the protocol tag so replay can rebuild the spec from the meta alone. *)
let bg_protocol ~procs = Printf.sprintf "bg.full-info:%d" procs

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Record the full run as a wfc.trace.v1 JSON trace to $(docv) (use - for stdout). \
           Without it, a bounded flight recorder retains the last 4096 events and dumps \
           them only on failure.")

let perfetto_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "perfetto" ] ~docv:"FILE"
        ~doc:"Export the run as a Chrome trace_event timeline for Perfetto / chrome://tracing.")

let write_json_to path j =
  if path = "-" then print_string (Wfc_obs.Json.to_string j)
  else begin
    Wfc_obs.Report.write_file path j;
    Format.eprintf "wrote %s@." path
  end

let read_json_from path =
  let contents =
    if path = "-" then In_channel.input_all stdin
    else In_channel.with_open_bin path In_channel.input_all
  in
  Wfc_obs.Json.parse contents

let trace_json meta tr = Trace_io.to_json Trace_io.string_value meta tr

let dump_flight_recorder ~path ~meta tr =
  Wfc_obs.Report.write_file path (trace_json meta tr);
  Format.eprintf "flight recorder: dumped %d retained event(s) to %s@." (List.length tr) path

let export_perfetto path tr =
  write_json_to path (Wfc_obs.Trace_event.to_json (Trace_io.to_trace_events ~show:Fun.id tr))

(* The §3.5 regression oracle on a recorded or replayed run: every memory
   level's firing sequence must induce legal immediate-snapshot views. *)
let check_is_levels tr =
  let rec go = function
    | [] -> Ok ()
    | (level, views) :: rest -> (
      match Trace.check_immediate_snapshot views with
      | Ok () -> go rest
      | Error e -> Error (Printf.sprintf "memory %d: %s" level e))
  in
  go (Trace.is_views_by_level tr)

(* ---------- sds ---------- *)

let sds_cmd =
  let run dim levels domains svg tikz stats json =
    apply_domains domains;
    let s, seconds = Output.timed (fun () -> Sds.standard ~dim ~levels) in
    let cx = Chromatic.complex (Sds.complex s) in
    Format.printf "%a@." Complex.pp_stats cx;
    Format.printf "expected facets: %d@." (Sds.count_facets ~dim ~levels);
    let geometric_ok =
      match Subdiv.check_geometric (Sds.subdiv s) with
      | Ok () ->
        Format.printf "geometric realization: exact@.";
        true
      | Error e ->
        Format.printf "geometric realization: BROKEN (%s)@." e;
        false
    in
    (match svg with
    | Some path ->
      let oc = open_out path in
      output_string oc (Export.svg (Sds.subdiv s));
      close_out oc;
      Format.printf "wrote %s@." path
    | None -> ());
    if tikz then print_string (Export.tikz (Sds.subdiv s));
    Output.emit ~stats ~json
      [
        Wfc_obs.Report.scenario
          ~extra:
            [
              ("facets", Wfc_obs.Json.Int (List.length (Complex.facets cx)));
              ("geometric_ok", Wfc_obs.Json.Bool geometric_ok);
            ]
          (Printf.sprintf "sds(dim=%d,levels=%d)" dim levels)
          seconds;
      ];
    0
  in
  let svg =
    Arg.(value & opt (some string) None & info [ "svg" ] ~docv:"FILE" ~doc:"Write an SVG drawing.")
  in
  let tikz = Arg.(value & flag & info [ "tikz" ] ~doc:"Print a TikZ picture.") in
  Cmd.v
    (Cmd.info "sds" ~doc:"Iterated standard chromatic subdivision: stats, geometry, drawings.")
    Term.(
      const run $ dim_arg $ levels_arg $ domains_arg $ svg $ tikz $ Output.stats_arg
      $ Output.json_arg)

(* ---------- homology ---------- *)

let homology_cmd =
  let run dim levels integer stats json =
    let (b, acyclic), seconds =
      Output.timed (fun () ->
          let cx = Chromatic.complex (Sds.complex (Sds.standard ~dim ~levels)) in
          let b = Homology.reduced_betti cx in
          let acyclic = Homology.is_acyclic cx in
          if integer then
            Format.printf "integer homology: %s@." (Homology_z.homology_summary cx);
          (b, acyclic))
    in
    Format.printf "SDS^%d(s^%d): reduced betti (Z/2) = (%s), acyclic = %b@." levels dim
      (String.concat "," (Array.to_list (Array.map string_of_int b)))
      acyclic;
    Output.emit ~stats ~json
      [
        Wfc_obs.Report.scenario
          ~extra:
            [
              ( "betti",
                Wfc_obs.Json.Arr
                  (Array.to_list (Array.map (fun x -> Wfc_obs.Json.Int x) b)) );
              ("acyclic", Wfc_obs.Json.Bool acyclic);
            ]
          (Printf.sprintf "homology(dim=%d,levels=%d)" dim levels)
          seconds;
      ];
    0
  in
  let integer =
    Arg.(value & flag & info [ "z"; "integer" ] ~doc:"Also compute integer homology (SNF).")
  in
  Cmd.v
    (Cmd.info "homology" ~doc:"Z/2 (and optionally Z) homology of SDS^b(s^n) (Lemma 2.2).")
    Term.(const run $ dim_arg $ levels_arg $ integer $ Output.stats_arg $ Output.json_arg)

(* ---------- simulate (BG simulation) ---------- *)

let simulate_cmd =
  let run simulators procs rounds seed crash trace_out perfetto =
    let spec = Bg_simulation.full_information_spec ~procs ~k:rounds in
    let strategy =
      match crash with
      | [] -> Runtime.random ~seed ()
      | victims -> Runtime.random_with_crashes ~seed ~crash:victims ()
    in
    let meta =
      Trace_io.meta ~seed ~crash ~protocol:(bg_protocol ~procs) ~procs:simulators ~rounds ()
    in
    let sink =
      if trace_out <> None || perfetto <> None then Runtime.Full else Runtime.Ring 4096
    in
    let dump_path =
      match trace_out with Some p when p <> "-" -> p | _ -> "wfc-failure.trace.json"
    in
    let on_trap tr = dump_flight_recorder ~path:dump_path ~meta tr in
    let r = Bg_simulation.run ~sink ~on_trap ~simulators spec strategy in
    Format.printf "completed simulated processes: %s@."
      (String.concat ","
         (Array.to_list (Array.mapi (fun j b -> Printf.sprintf "P%d:%b" j b) r.Bg_simulation.completed)));
    Format.printf "snapshot agreements: %d@." r.Bg_simulation.cost.Bg_simulation.agreements;
    Format.printf "ops per simulator: %s@."
      (String.concat ","
         (Array.to_list
            (Array.map string_of_int r.Bg_simulation.cost.Bg_simulation.simulator_ops)));
    (match trace_out with
    | Some path -> write_json_to path (trace_json meta (Lazy.force r.Bg_simulation.trace))
    | None -> ());
    (match perfetto with Some path -> export_perfetto path (Lazy.force r.Bg_simulation.trace) | None -> ());
    match Bg_simulation.check spec r with
    | Ok () ->
      Format.printf "simulated history: legal@.";
      0
    | Error e ->
      Format.printf "simulated history: BROKEN (%s)@." e;
      if trace_out = None then dump_flight_recorder ~path:dump_path ~meta (Lazy.force r.Bg_simulation.trace);
      1
  in
  let simulators =
    Arg.(value & opt int 2 & info [ "s"; "simulators" ] ~docv:"S" ~doc:"Number of simulators.")
  in
  let crash =
    Arg.(value & opt (list int) [] & info [ "crash" ] ~docv:"S,..." ~doc:"Crash these simulators.")
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"BG simulation: S crash-prone simulators run a P-process snapshot protocol.")
    Term.(
      const run $ simulators $ procs_arg $ levels_arg $ seed_arg $ crash $ trace_out_arg
      $ perfetto_arg)

(* ---------- protocol-complex ---------- *)

let pc_cmd =
  let run model procs rounds =
    let pc =
      match model with
      | "is" -> Protocol_complex.one_shot_is ~procs
      | "iis" -> Protocol_complex.iis ~procs ~rounds
      | "atomic" -> Protocol_complex.atomic ~procs ~rounds
      | m -> failwith ("unknown model: " ^ m)
    in
    Format.printf "%a@." Complex.pp_stats (Chromatic.complex pc.Protocol_complex.chromatic);
    if model <> "atomic" then begin
      let sds = Sds.standard ~dim:(procs - 1) ~levels:(if model = "is" then 1 else rounds) in
      Format.printf "matches SDS^b(s^n): %b@." (Protocol_complex.matches_sds pc sds)
    end;
    0
  in
  let model =
    Arg.(
      value
      & opt (enum [ ("is", "is"); ("iis", "iis"); ("atomic", "atomic") ]) "iis"
      & info [ "model" ] ~docv:"MODEL" ~doc:"One of is, iis, atomic.")
  in
  Cmd.v
    (Cmd.info "protocol-complex"
       ~doc:"Build a protocol complex by running every schedule (Lemmas 3.2/3.3).")
    Term.(const run $ model $ procs_arg $ levels_arg)

(* ---------- emulate ---------- *)

let emulate_cmd =
  let run procs rounds seed trace crash trace_out perfetto stats json =
    let spec = Emulation.full_information_spec ~procs ~k:rounds in
    let strategy =
      match crash with
      | [] -> Runtime.random ~seed ()
      | victims -> Runtime.random_with_crashes ~seed ~crash:victims ()
    in
    let meta = Trace_io.meta ~seed ~crash ~protocol:emulation_protocol ~procs ~rounds () in
    let sink =
      if trace_out <> None || perfetto <> None then Runtime.Full else Runtime.Ring 4096
    in
    let dump_path =
      match trace_out with Some p when p <> "-" -> p | _ -> "wfc-failure.trace.json"
    in
    let on_trap tr = dump_flight_recorder ~path:dump_path ~meta tr in
    let r, seconds =
      Output.timed (fun () -> Emulation.run ~sink ~on_trap ~show:Fun.id spec strategy)
    in
    let cost = r.Emulation.cost in
    Format.printf "IIS memories used: %d@." cost.Emulation.memories;
    Format.printf "WriteReads per process: %s@."
      (String.concat ", "
         (Array.to_list (Array.mapi (Printf.sprintf "P%d:%d") cost.Emulation.write_reads)));
    let atomic =
      match Emulation.check r with
      | Ok () ->
        Format.printf "atomicity: OK@.";
        true
      | Error e ->
        Format.printf "atomicity: VIOLATED (%s)@." e;
        false
    in
    if trace then
      List.iter
        (fun o ->
          match o.Trace.kind with
          | `Write sq ->
            Format.printf "  P%d write#%d  [%d,%d]@." o.Trace.proc sq o.Trace.t_start
              o.Trace.t_end
          | `Snapshot v ->
            Format.printf "  P%d snap (%s)  [%d,%d]@." o.Trace.proc
              (String.concat "," (Array.to_list (Array.map string_of_int v)))
              o.Trace.t_start o.Trace.t_end)
        r.Emulation.ops;
    (match trace_out with
    | Some path -> write_json_to path (trace_json meta (Lazy.force r.Emulation.trace))
    | None -> if not atomic then dump_flight_recorder ~path:dump_path ~meta (Lazy.force r.Emulation.trace));
    (match perfetto with Some path -> export_perfetto path (Lazy.force r.Emulation.trace) | None -> ());
    Output.emit ~stats ~json
      [
        Wfc_obs.Report.scenario
          ~verdict:(if atomic then "atomic" else "violated")
          ~extra:
            [
              ("memories", Wfc_obs.Json.Int cost.Emulation.memories);
              ( "write_reads",
                Wfc_obs.Json.Int (Array.fold_left ( + ) 0 cost.Emulation.write_reads) );
              ("steps", Wfc_obs.Json.Int cost.Emulation.steps);
            ]
          (Printf.sprintf "emulate(procs=%d,rounds=%d,seed=%d)" procs rounds seed)
          seconds;
      ];
    if atomic then 0 else 1
  in
  let trace = Arg.(value & flag & info [ "trace" ] ~doc:"Print the emulated operation log.") in
  let crash =
    Arg.(value & opt (list int) [] & info [ "crash" ] ~docv:"P,..." ~doc:"Crash these processes.")
  in
  Cmd.v
    (Cmd.info "emulate"
       ~doc:"Emulate the k-shot atomic snapshot protocol over IIS (Figure 2) and certify it.")
    Term.(
      const run $ procs_arg $ levels_arg $ seed_arg $ trace $ crash $ trace_out_arg
      $ perfetto_arg $ Output.stats_arg $ Output.json_arg)

(* ---------- trace / replay ---------- *)

let trace_cmd =
  let run protocol simulators procs rounds seed crash out perfetto =
    let strategy () =
      match crash with
      | [] -> Runtime.random ~seed ()
      | victims -> Runtime.random_with_crashes ~seed ~crash:victims ()
    in
    let meta, tr, check =
      match protocol with
      | "emulation" ->
        let spec = Emulation.full_information_spec ~procs ~k:rounds in
        let meta = Trace_io.meta ~seed ~crash ~protocol:emulation_protocol ~procs ~rounds () in
        let r = Emulation.run ~sink:Runtime.Full ~show:Fun.id spec (strategy ()) in
        (meta, (Lazy.force r.Emulation.trace), Emulation.check r)
      | _ ->
        let spec = Bg_simulation.full_information_spec ~procs ~k:rounds in
        let meta =
          Trace_io.meta ~seed ~crash ~protocol:(bg_protocol ~procs) ~procs:simulators ~rounds ()
        in
        let r = Bg_simulation.run ~sink:Runtime.Full ~simulators spec (strategy ()) in
        (meta, (Lazy.force r.Bg_simulation.trace), Bg_simulation.check spec r)
    in
    write_json_to out (trace_json meta tr);
    Format.eprintf "recorded %d event(s), %d decision(s)@." (List.length tr)
      (List.length (Trace_io.decisions_of tr));
    (match perfetto with Some path -> export_perfetto path tr | None -> ());
    match check with
    | Ok () -> 0
    | Error e ->
      Format.eprintf "recorded run FAILS its checker: %s@." e;
      1
  in
  let protocol =
    Arg.(
      value
      & opt (enum [ ("emulation", "emulation"); ("bg", "bg") ]) "emulation"
      & info [ "protocol" ] ~docv:"PROTO" ~doc:"What to record: emulation or bg.")
  in
  let simulators =
    Arg.(value & opt int 2 & info [ "s"; "simulators" ] ~docv:"S" ~doc:"Simulators (bg only).")
  in
  let crash =
    Arg.(value & opt (list int) [] & info [ "crash" ] ~docv:"P,..." ~doc:"Crash these processes.")
  in
  let out =
    Arg.(
      value & opt string "-"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Trace destination (default: stdout).")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Record a seeded run as a persistent wfc.trace.v1 JSON trace — the input of $(b,wfc \
          replay) and of Perfetto export.")
    Term.(
      const run $ protocol $ simulators $ procs_arg $ levels_arg $ seed_arg $ crash $ out
      $ perfetto_arg)

let replay_cmd =
  let run file out perfetto =
    match read_json_from file with
    | Error e ->
      Format.eprintf "%s: not valid JSON (%s)@." file e;
      1
    | Ok j -> (
      match Trace_io.of_json Trace_io.string_of_value j with
      | Error e ->
        Format.eprintf "%s: invalid %s trace (%s)@." file Trace_io.schema_version e;
        1
      | Ok (meta, recorded) -> (
        let decisions = Trace_io.decisions_of recorded in
        let rerun () =
          if meta.Trace_io.protocol = emulation_protocol then begin
            let spec =
              Emulation.full_information_spec ~procs:meta.Trace_io.procs
                ~k:meta.Trace_io.rounds
            in
            let r =
              Emulation.run ~sink:Runtime.Full ~show:Fun.id spec (Trace_io.replay decisions)
            in
            Some ((Lazy.force r.Emulation.trace), Emulation.check r)
          end
          else
            match String.split_on_char ':' meta.Trace_io.protocol with
            | [ "bg.full-info"; m ] -> (
              match int_of_string_opt m with
              | None -> None
              | Some m ->
                let spec = Bg_simulation.full_information_spec ~procs:m ~k:meta.Trace_io.rounds in
                let r =
                  Bg_simulation.run ~sink:Runtime.Full ~simulators:meta.Trace_io.procs spec
                    (Trace_io.replay decisions)
                in
                Some ((Lazy.force r.Bg_simulation.trace), Bg_simulation.check spec r))
            | _ -> None
        in
        match rerun () with
        | None ->
          Format.eprintf "%s: unknown protocol %S@." file meta.Trace_io.protocol;
          1
        | Some (replayed, protocol_check) ->
          let original_bytes = Wfc_obs.Json.to_string (trace_json meta recorded) in
          let replayed_bytes = Wfc_obs.Json.to_string (trace_json meta replayed) in
          let identical = String.equal original_bytes replayed_bytes in
          Format.printf "replayed %d decision(s)@." (List.length decisions);
          Format.printf "canonical trace byte-identical: %b@." identical;
          let is_check = check_is_levels replayed in
          (match is_check with
          | Ok () -> Format.printf "immediate-snapshot views (§3.5): OK@."
          | Error e -> Format.printf "immediate-snapshot views (§3.5): VIOLATED (%s)@." e);
          (match protocol_check with
          | Ok () -> Format.printf "protocol checker: OK@."
          | Error e -> Format.printf "protocol checker: VIOLATED (%s)@." e);
          (match out with
          | Some path -> write_json_to path (trace_json meta replayed)
          | None -> ());
          (match perfetto with Some path -> export_perfetto path replayed | None -> ());
          if identical && is_check = Ok () && protocol_check = Ok () then 0 else 1))
  in
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"wfc.trace.v1 trace to replay (use - for stdin).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write the replayed canonical trace to $(docv).")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Deterministically re-execute a recorded trace, re-run the correctness checkers, and \
          verify the replayed canonical trace is byte-identical. Exits non-zero on any \
          divergence.")
    Term.(const run $ file $ out $ perfetto_arg)

(* ---------- solve ---------- *)

let task_of name procs param =
  try Instances.by_name ~name ~procs ~param with Invalid_argument m -> failwith m

(* shared by solve / query / serve / store *)

let default_socket = Filename.concat (Filename.get_temp_dir_name ()) "wfc.sock"

let socket_arg =
  Arg.(
    value & opt string default_socket
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket of the verdict daemon.")

let store_opt_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "store" ] ~docv:"DIR"
        ~doc:"Persistent wfc.store.v2 verdict store: reused on hits, updated on misses.")

let store_req_arg =
  Arg.(
    value & opt string ".wfc-store"
    & info [ "store" ] ~docv:"DIR" ~doc:"The wfc.store.v2 verdict store directory.")

(* --codec parses eagerly, like --model *)
let codec_conv : Wfc_storage.Codec.t Arg.conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Wfc_storage.Codec.of_string s) in
  Arg.conv ~docv:"CODEC"
    (parse, fun ppf c -> Format.pp_print_string ppf (Wfc_storage.Codec.to_string c))

let codec_arg =
  Arg.(
    value
    & opt codec_conv Wfc_storage.Codec.Json
    & info [ "codec" ] ~docv:"CODEC"
        ~doc:
          "Record encoding for new store writes: $(b,json) (canonical JSON, default) or \
           $(b,compact) (varint/byte-packed binary, .wfcb). Negotiated per record and \
           recorded in the manifest — a store mixes codecs freely and reads both; the \
           canonical verdict bytes a query answers with are codec-independent.")

(* Opening a store for solving also points Sds.iterate at its skeleton
   keyspace, so cold solves against already-seen subdivisions replay
   persisted SDS steps instead of re-enumerating. *)
let open_solving_store ?codec dir =
  let st = Wfc_serve.Store.open_store ?codec dir in
  Wfc_serve.Store.attach_skeletons st;
  st

let verdict_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "verdict-out" ] ~docv:"FILE"
        ~doc:
          "Write the canonical verdict object (the wfc.store.v2 record minus its timing \
           fields — every byte a deterministic function of the question, identical across \
           solve / query / store hits) to $(docv); - for stdout.")

(* --model parses eagerly: an unknown model name dies in argument parsing,
   before any complex is built *)
let model_conv : Model.t Arg.conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Model.of_string s) in
  Arg.conv ~docv:"MODEL" (parse, fun ppf m -> Format.pp_print_string ppf (Model.to_string m))

let model_arg =
  Arg.(
    value
    & opt model_conv Model.wait_free
    & info [ "model" ] ~docv:"MODEL"
        ~doc:
          "Computation model to decide solvability under: wait-free (default), \
           t-resilient:T, or k-set:K — an affine restriction of the IIS runs. See $(b,wfc \
           models).")

(* search-reducer escape hatches, shared by solve / query. Both reducers are
   verdict-preserving, so these only trade search cost, never answers. *)
let no_symmetry_arg =
  Arg.(
    value & flag
    & info [ "no-symmetry" ]
        ~doc:
          "Disable lex-leader symmetry pruning (on by default): task automorphisms of (I, \
           O, Δ) lifted through the subdivision cut candidate assignments that are provably \
           not canonical in their orbit. Verdicts, levels and decision maps are unchanged \
           either way; watch solvability.symmetry.orbits / .pruned under --stats.")

let no_collapse_arg =
  Arg.(
    value & flag
    & info [ "no-collapse" ]
        ~doc:
          "Disable the collapsibility-guided static variable order (on by default): a \
           free-face collapsing sequence of the (admitted) protocol complex replaces \
           dynamic most-constrained-first selection. Verdicts are unchanged either way; \
           watch solvability.collapse.schedule_len under --stats.")

let spec_string ~task ~procs ~param ~max_level ~model =
  (* the spec string carries the question only; reducer flags are
     verdict-preserving and never part of a record's identity *)
  Wfc_serve.Wire.spec_to_string
    {
      Wfc_serve.Wire.task;
      procs;
      param;
      max_level;
      model;
      symmetry = true;
      collapse = true;
    }

let fresh_record ~t ~task ~procs ~param ~max_level ~model outcome =
  Wfc_serve.Store.record ~task:t
    ~spec:(spec_string ~task ~procs ~param ~max_level ~model)
    ~model ~max_level ~budget:Solvability.default_budget outcome

let solve_cmd =
  let run task procs param max_level domains portfolio model no_symmetry no_collapse validate
      search_trace store_dir codec verdict_out perfetto stats json =
    apply_domains domains;
    let opts =
      Solvability.options ~trace:search_trace
        ?mode:(if portfolio then Some `Portfolio else None)
        ~model ~symmetry:(not no_symmetry) ~collapse:(not no_collapse) ()
    in
    let model_name = Model.to_string model in
    let t = task_of task procs param in
    Format.printf "%a@." Task.pp_stats t;
    if not (Model.equal model Model.wait_free) then
      Format.printf "model: %s@." model_name;
    let store = Option.map (open_solving_store ~codec) store_dir in
    let emit_verdict record =
      match verdict_out with
      | Some path -> write_json_to path (Wfc_serve.Store.verdict_json record)
      | None -> ()
    in
    (* a store hit answers without building a single subdivision *)
    let cached =
      match store with
      | Some st ->
        Wfc_serve.Store.find st ~digest:(Task.digest t) ~model:model_name ~max_level
          ~budget:Solvability.default_budget
      | None -> None
    in
    match cached with
    | Some r ->
      let o = r.Wfc_serve.Store.outcome in
      Format.printf "verdict from store: %s at level %d (nodes=%d)@." o.Solvability.o_verdict
        o.Solvability.o_level o.Solvability.o_nodes;
      emit_verdict r;
      if o.Solvability.o_verdict = "exhausted" then exit_exhausted else 0
    | None ->
    let verdict = Solvability.solve ~opts ~max_level t in
    let vstats = Solvability.stats_of_verdict verdict in
    let level =
      match verdict with
      | Solvability.Solvable { map; _ } -> map.Solvability.level
      | Solvability.Unsolvable_at { level; _ } | Solvability.Exhausted { level; _ } -> level
    in
    let code =
      match verdict with
      | Solvability.Solvable { map; _ } ->
        Format.printf "SOLVABLE with %d IIS round(s); map verified: %b@."
          map.Solvability.level
          (Solvability.verify map = Ok ());
        if validate then begin
          (* the distributed validator drives arbitrary adversary runs, which
             can leave a restricting model's admitted sub-complex *)
          if not (Model.equal model Model.wait_free) then
            Format.printf "distributed validation: skipped (only defined for wait-free)@."
          else
            match Characterization.validate map with
            | Ok () -> Format.printf "distributed validation: OK@."
            | Error e -> Format.printf "distributed validation: FAILED (%s)@." e
        end;
        0
      | Solvability.Unsolvable_at { level = b; trail; _ } ->
        (* a completed exhaustive search IS the answer: exit 0 *)
        Format.printf "UNSOLVABLE for every b <= %d (search space exhausted)@." b;
        if search_trace then
          Format.printf "refutation trail: %d recorded search event(s)@." (List.length trail);
        0
      | Solvability.Exhausted { level; stats = s } ->
        Format.printf "UNDECIDED at b = %d (budget: %d nodes)@." level s.Solvability.nodes;
        exit_exhausted
    in
    if stats then Format.printf "search: %a@." Solvability.pp_stats vstats;
    let trail_extra =
      match verdict with
      | Solvability.Unsolvable_at { trail; _ } when search_trace ->
        [ ("search_trail", Wfc_obs.Json.Arr (List.map Solvability.search_event_to_json trail)) ]
      | _ -> []
    in
    Output.emit ~stats ~json
      [
        Wfc_obs.Report.scenario ~nodes:vstats.Solvability.nodes
          ~verdict:(Solvability.verdict_name verdict)
          ~extra:
            ([
               ("level", Wfc_obs.Json.Int level);
               ("backtracks", Wfc_obs.Json.Int vstats.Solvability.backtracks);
               ("prunes", Wfc_obs.Json.Int vstats.Solvability.prunes);
             ]
            @ trail_extra)
          (Printf.sprintf "solve(%s,procs=%d,param=%d)" task procs param)
          vstats.Solvability.elapsed;
      ];
    (match perfetto with
    | Some path ->
      let events = Wfc_obs.Trace_event.of_spans (Wfc_obs.Metrics.spans_now ()) in
      Wfc_obs.Report.write_file path (Wfc_obs.Trace_event.to_json events);
      Printf.eprintf "wrote %s\n%!" path
    | None -> ());
    if verdict_out <> None || store <> None then begin
      let record =
        fresh_record ~t ~task ~procs ~param ~max_level ~model:model_name
          (Solvability.outcome_of_verdict verdict)
      in
      (match (store, verdict) with
      | Some st, (Solvability.Solvable _ | Solvability.Unsolvable_at _) ->
        Wfc_serve.Store.put st record
      | _ -> () (* exhausted: not a reusable fact about the task *));
      emit_verdict record
    end;
    code
  in
  let task =
    Arg.(
      value
      & opt string "consensus"
      & info [ "task" ] ~docv:"TASK"
          ~doc:"One of consensus, set-consensus, renaming, approx, identity, tas, fai, loop-disk, loop-circle.")
  in
  let param =
    Arg.(
      value & opt int 2
      & info [ "param" ] ~docv:"K"
          ~doc:"Task parameter: k for set-consensus, names for renaming, grid for approx.")
  in
  let max_level =
    Arg.(value & opt int 2 & info [ "max-level" ] ~docv:"B" ~doc:"Largest round count to try.")
  in
  let portfolio =
    Arg.(
      value & flag
      & info [ "portfolio" ]
          ~doc:
            "With --domains D > 1, race D deterministic variable orders per level and take \
             the first verdict instead of splitting one search (default comes from the \
             WFC_PORTFOLIO environment variable). Verdicts and decision maps are unchanged; \
             node tallies describe the winning racer. Watch it under --stats via the \
             par.portfolio_* counters.")
  in
  let validate =
    Arg.(value & flag & info [ "validate" ] ~doc:"Run the found map as a distributed protocol.")
  in
  let search_trace =
    Arg.(
      value & flag
      & info [ "search-trace" ]
          ~doc:
            "Record the backtracking search into a bounded ring; an unsolvable verdict then \
             carries a machine-readable refutation trail (embedded in the --json report).")
  in
  let solve_perfetto =
    Arg.(
      value
      & opt (some string) None
      & info [ "perfetto" ] ~docv:"FILE"
          ~doc:
            "Export the search's span tree (per-level solve spans, subdivision work) as a \
             Chrome trace_event timeline for Perfetto / chrome://tracing.")
  in
  Cmd.v
    (Cmd.info "solve"
       ~doc:
         "Decide solvability of a task (Proposition 3.1) under a computation model \
          ($(b,--model), wait-free by default). Exits 0 on a verdict (solvable or \
          unsolvable), 3 if the node budget ran out. With $(b,--store), verdicts persist \
          across invocations and known questions are answered from disk.")
    Term.(
      const run $ task $ procs_arg $ param $ max_level $ domains_arg $ portfolio $ model_arg
      $ no_symmetry_arg $ no_collapse_arg $ validate $ search_trace $ store_opt_arg
      $ codec_arg $ verdict_out_arg $ solve_perfetto $ Output.stats_arg $ Output.json_arg)

(* ---------- serve / query / store ---------- *)

let task_arg =
  Arg.(
    value
    & opt string "consensus"
    & info [ "task" ] ~docv:"TASK"
        ~doc:
          "One of consensus, set-consensus, renaming, approx, identity, tas, fai, loop-disk, \
           loop-circle.")

let param_arg =
  Arg.(
    value & opt int 2
    & info [ "param" ] ~docv:"K"
        ~doc:"Task parameter: k for set-consensus, names for renaming, grid for approx.")

let max_level_arg =
  Arg.(value & opt int 2 & info [ "max-level" ] ~docv:"B" ~doc:"Largest round count to try.")

let serve_cmd =
  let run socket store_dir queue solvers domains json log log_level slow_ms stop =
    if stop then (
      match Wfc_serve.Client.connect ~socket with
      | Error e ->
        Format.eprintf "%s@." e;
        1
      | Ok c ->
        let r = Wfc_serve.Client.shutdown c in
        Wfc_serve.Client.close c;
        (match r with
        | Ok () ->
          Format.printf "daemon on %s stopped@." socket;
          0
        | Error e ->
          Format.eprintf "%s@." e;
          1))
    else begin
      apply_domains domains;
      Format.printf "wfc serve: socket=%s store=%s queue=%d solvers=%d domains=%d@." socket
        store_dir queue (max 1 solvers) (Wfc_par.domains ());
      match Wfc_obs.Log.level_of_string log_level with
      | Error e ->
        Format.eprintf "%s@." e;
        1
      | Ok log_level -> (
        let cfg =
          {
            (Wfc_serve.Daemon.config ~queue_capacity:queue ~solvers ?log ~log_level ?slow_ms
               ~socket ~store_dir ())
            with
            Wfc_serve.Daemon.report = json;
          }
        in
        match Wfc_serve.Daemon.run cfg with
        | () -> 0
        | exception Failure m ->
          Format.eprintf "%s@." m;
          1)
    end
  in
  let queue =
    Arg.(
      value & opt int 64
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Bounded request queue: queries beyond $(docv) pending questions are shed \
             (explicit backpressure) instead of buffered.")
  in
  let solvers =
    Arg.(
      value & opt int 2
      & info [ "solvers" ] ~docv:"N"
          ~doc:
            "Scheduler worker threads: up to $(docv) distinct cold questions are solved \
             concurrently, round-robin across task digests (no head-of-line blocking).")
  in
  let log =
    Arg.(
      value
      & opt (some string) None
      & info [ "log" ] ~docv:"FILE"
          ~doc:
            "Append one wfc.log.v1 JSONL event line per request lifecycle event to $(docv) \
             (validated by $(b,wfc check-json)).")
  in
  let log_level =
    Arg.(
      value & opt string "info"
      & info [ "log-level" ] ~docv:"LEVEL"
          ~doc:"Minimum event level written to --log: debug, info, warn or error.")
  in
  let slow_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:
            "Log a $(i,slow_query) warning (spec, verdict source, search stats, stage \
             timing) for any query at least $(docv) milliseconds end-to-end.")
  in
  let stop =
    Arg.(value & flag & info [ "stop" ] ~doc:"Ask the daemon on --socket to shut down cleanly.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the solvability daemon: a persistent verdict store plus in-flight dedup behind \
          a Unix-domain socket. Answers $(b,wfc query) traffic; search work runs on the \
          --domains pool. Request lifecycles are measured stage by stage (see $(b,wfc \
          stats)) and optionally logged with $(b,--log). Shut down with $(b,--stop), SIGINT \
          or SIGTERM; survives SIGKILL with a loadable store.")
    Term.(
      const run $ socket_arg $ store_req_arg $ queue $ solvers $ domains_arg $ Output.json_arg
      $ log $ log_level $ slow_ms $ stop)

let query_cmd =
  let run task procs param max_level model no_symmetry no_collapse socket store_dir codec
      domains no_daemon ping verdict_out stats json =
    apply_domains domains;
    let model_name = Model.to_string model in
    let symmetry = not no_symmetry and collapse = not no_collapse in
    if ping then (
      match Wfc_serve.Client.connect ~socket with
      | Ok c -> (
        let r = Wfc_serve.Client.ping_info c in
        Wfc_serve.Client.close c;
        match r with
        | Ok (version, uptime_s) ->
          (* a pre-telemetry daemon ponged with no payload; still a pong *)
          Format.printf "pong%s%s@."
            (match version with Some v -> " version=" ^ v | None -> "")
            (match uptime_s with
            | Some u -> Printf.sprintf " uptime=%.1fs" u
            | None -> "");
          0
        | Error _ ->
          Format.eprintf "daemon on %s did not answer@." socket;
          1)
      | Error e ->
        Format.eprintf "%s@." e;
        1)
    else begin
      let spec =
        { Wfc_serve.Wire.task; procs; param; max_level; model = model_name; symmetry; collapse }
      in
      let budget = Solvability.default_budget in
      let finish ?req_id ?timing ~source record =
        let o = record.Wfc_serve.Store.outcome in
        Format.printf "verdict: %s at level %d (source=%s, nodes=%d)@."
          o.Solvability.o_verdict o.Solvability.o_level source o.Solvability.o_nodes;
        Format.printf "digest: %s@." record.Wfc_serve.Store.digest;
        (* daemon-side telemetry, echoed on the wire; absent on inline solves
           and against pre-telemetry daemons *)
        (match timing with
        | Some t ->
          Format.printf "timing: queue_wait=%.6fs solve=%.6fs store=%.6fs total=%.6fs@."
            t.Wfc_serve.Wire.queue_wait_s t.Wfc_serve.Wire.solve_s t.Wfc_serve.Wire.store_s
            t.Wfc_serve.Wire.total_s
        | None -> ());
        (match verdict_out with
        | Some path -> write_json_to path (Wfc_serve.Store.verdict_json record)
        | None -> ());
        Output.emit ~stats ~json
          [
            Wfc_obs.Report.scenario ~nodes:o.Solvability.o_nodes
              ~verdict:o.Solvability.o_verdict
              ~extra:
                ([
                   ("source", Wfc_obs.Json.String source);
                   ("level", Wfc_obs.Json.Int o.Solvability.o_level);
                   ("digest", Wfc_obs.Json.String record.Wfc_serve.Store.digest);
                 ]
                @ (match req_id with
                  | Some id -> [ ("req_id", Wfc_obs.Json.String id) ]
                  | None -> [])
                @
                match timing with
                | Some t -> [ ("timing", Wfc_serve.Wire.timing_to_json t) ]
                | None -> [])
              (Printf.sprintf "query(%s)" (Wfc_serve.Wire.spec_to_string spec))
              o.Solvability.o_elapsed;
          ];
        if o.Solvability.o_verdict = "exhausted" then exit_exhausted else 0
      in
      (* No daemon (or a shed response) degrades to an inline solve through
         the same store-hook entry point the daemon uses, so the printed
         verdict and --verdict-out bytes cannot depend on who computed. *)
      let inline reason =
        Format.eprintf "query: %s; solving inline@." reason;
        match Instances.by_name ~name:task ~procs ~param with
        | exception Invalid_argument m ->
          Format.eprintf "%s@." m;
          1
        | t -> (
          let store = Option.map (open_solving_store ~codec) store_dir in
          let digest = Task.digest t in
          let committed = ref None in
          let hook =
            Option.map
              (fun st ->
                {
                  Solvability.lookup =
                    (fun () ->
                      Option.map
                        (fun r -> r.Wfc_serve.Store.outcome)
                        (Wfc_serve.Store.find st ~digest ~model:model_name ~max_level
                           ~budget));
                  commit =
                    (fun o ->
                      let r =
                        fresh_record ~t ~task ~procs ~param ~max_level ~model:model_name o
                      in
                      Wfc_serve.Store.put st r;
                      committed := Some r);
                })
              store
          in
          match
            Solvability.solve_cached
              ~opts:(Solvability.options ~budget ~model ~symmetry ~collapse ())
              ?store:hook ~max_level t
          with
          | o, `Computed ->
            let record =
              match !committed with
              | Some r -> r
              | None -> fresh_record ~t ~task ~procs ~param ~max_level ~model:model_name o
            in
            finish ~source:"inline" record
          | o, `Hit ->
            let record =
              match
                Option.map
                  (fun st ->
                    Wfc_serve.Store.find st ~digest ~model:model_name ~max_level ~budget)
                  store
              with
              | Some (Some r) -> r
              | _ -> fresh_record ~t ~task ~procs ~param ~max_level ~model:model_name o
            in
            finish ~source:"store" record)
      in
      if no_daemon then inline "daemon disabled (--no-daemon)"
      else
        match Wfc_serve.Client.connect ~socket with
        | Error e -> inline e
        | Ok c -> (
          (* correlate this CLI invocation with the daemon's log lines *)
          let req_id =
            Printf.sprintf "cli-%d-%.0f" (Unix.getpid ()) (Unix.gettimeofday () *. 1e6)
          in
          let r = Wfc_serve.Client.query ~req_id c spec in
          Wfc_serve.Client.close c;
          match r with
          | Ok (Wfc_serve.Wire.Verdict { source; record; req_id; timing }) ->
            finish ?req_id ?timing ~source:(Wfc_serve.Wire.source_name source) record
          | Ok Wfc_serve.Wire.Shed -> inline "daemon shed the request (queue full)"
          | Ok (Wfc_serve.Wire.Failed m) ->
            Format.eprintf "daemon error: %s@." m;
            1
          | Ok _ ->
            Format.eprintf "unexpected daemon response@.";
            1
          | Error e ->
            Format.eprintf "%s@." e;
            1)
    end
  in
  let no_daemon =
    Arg.(
      value & flag
      & info [ "no-daemon" ] ~doc:"Skip the daemon and solve inline (still uses --store).")
  in
  let ping =
    Arg.(
      value & flag
      & info [ "ping" ] ~doc:"Only probe the daemon: exit 0 iff it answers a ping.")
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Ask the solvability daemon for a task verdict; falls back to an inline solve when \
          no daemon answers or the daemon sheds. Identical questions return byte-identical \
          canonical verdicts whatever the path (daemon store hit, daemon computation, \
          coalesced wait, inline).")
    Term.(
      const run $ task_arg $ procs_arg $ param_arg $ max_level_arg $ model_arg
      $ no_symmetry_arg $ no_collapse_arg $ socket_arg $ store_opt_arg $ codec_arg
      $ domains_arg $ no_daemon $ ping $ verdict_out_arg $ Output.stats_arg $ Output.json_arg)

let stats_cmd =
  let run socket prometheus json =
    match Wfc_serve.Client.connect ~socket with
    | Error e ->
      Format.eprintf "%s@." e;
      1
    | Ok c -> (
      let r = Wfc_serve.Client.stats c in
      Wfc_serve.Client.close c;
      match r with
      | Error e ->
        Format.eprintf "%s@." e;
        1
      | Ok (metrics, server) ->
        let obj_fields = function Wfc_obs.Json.Obj f -> f | _ -> [] in
        let num = function
          | Wfc_obs.Json.Float f -> Some f
          | Wfc_obs.Json.Int i -> Some (float_of_int i)
          | _ -> None
        in
        let counters =
          List.filter_map
            (function n, Wfc_obs.Json.Int v -> Some (n, v) | _ -> None)
            (match Wfc_obs.Json.member "counters" metrics with
            | Some o -> obj_fields o
            | None -> [])
        in
        let histograms =
          List.map
            (fun (n, h) ->
              let field k = Option.bind (Wfc_obs.Json.member k h) num in
              (n, field "count", field "sum", field "mean", field "min", field "max"))
            (match Wfc_obs.Json.member "histograms" metrics with
            | Some o -> obj_fields o
            | None -> [])
        in
        let server_num k =
          Option.bind server (fun s -> Option.bind (Wfc_obs.Json.member k s) num)
        in
        if prometheus then begin
          (* text exposition: dots (and any other non-identifier byte) in
             metric names become underscores, wfc_ prefixed *)
          let mangle n =
            "wfc_"
            ^ String.map
                (fun c ->
                  match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> c | _ -> '_')
                n
          in
          List.iter
            (fun (n, v) ->
              let n = mangle n in
              Format.printf "# TYPE %s counter@.%s %d@." n n v)
            counters;
          List.iter
            (fun (n, count, sum, _, _, _) ->
              let n = mangle n in
              Format.printf "# TYPE %s summary@." n;
              (match count with
              | Some c -> Format.printf "%s_count %.0f@." n c
              | None -> ());
              match sum with Some s -> Format.printf "%s_sum %.6f@." n s | None -> ())
            histograms;
          (match server_num "uptime_s" with
          | Some u -> Format.printf "# TYPE wfc_uptime_seconds gauge@.wfc_uptime_seconds %.6f@." u
          | None -> ());
          List.iter
            (fun (key, metric) ->
              match server_num key with
              | Some v -> Format.printf "# TYPE %s gauge@.%s %.0f@." metric metric v
              | None -> ())
            [ ("inflight", "wfc_inflight"); ("queue_depth", "wfc_queue_depth") ]
        end
        else begin
          (match server with
          | Some s ->
            let str k =
              match Wfc_obs.Json.member k s with
              | Some (Wfc_obs.Json.String v) -> v
              | _ -> "?"
            in
            let int k = match server_num k with Some v -> int_of_float v | None -> 0 in
            Format.printf "daemon: version=%s uptime=%.1fs inflight=%d queue=%d/%d solvers=%d@."
              (str "version")
              (Option.value ~default:0. (server_num "uptime_s"))
              (int "inflight") (int "queue_depth") (int "queue_capacity") (int "solvers");
            (match Wfc_obs.Json.member "workers" s with
            | Some (Wfc_obs.Json.Arr ws) ->
              List.iter
                (fun w ->
                  let f k =
                    match Wfc_obs.Json.member k w with
                    | Some (Wfc_obs.Json.Int i) -> string_of_int i
                    | Some (Wfc_obs.Json.String v) -> v
                    | _ -> "?"
                  in
                  Format.printf "worker %s: %s%s (%s job%s)@." (f "id") (f "state")
                    (match Wfc_obs.Json.member "digest" w with
                    | Some (Wfc_obs.Json.String d) -> " " ^ d
                    | _ -> "")
                    (f "jobs")
                    (if f "jobs" = "1" then "" else "s"))
                ws
            | _ -> ())
          | None -> Format.printf "daemon: (pre-telemetry daemon — no server block)@.");
          if counters <> [] then begin
            Format.printf "counters@.";
            let w = List.fold_left (fun w (n, _) -> max w (String.length n)) 0 counters in
            List.iter (fun (n, v) -> Format.printf "  %-*s %12d@." w n v) counters
          end;
          let timed = List.filter (fun (_, c, _, _, _, _) -> c <> Some 0.) histograms in
          if timed <> [] then begin
            Format.printf "timers@.";
            let w =
              List.fold_left (fun w (n, _, _, _, _, _) -> max w (String.length n)) 0 timed
            in
            List.iter
              (fun (n, count, _, mean, min_, max_) ->
                let g = Option.value ~default:0. in
                Format.printf "  %-*s count=%-6.0f mean=%.6f min=%.6f max=%.6f@." w n
                  (g count) (g mean) (g min_) (g max_))
              timed
          end
        end;
        (match json with
        | Some path ->
          (* a wfc.obs.v1 report (validated by wfc check-json): the daemon's
             uptime as the single scenario, metrics sections and the server
             block merged at top level *)
          let report =
            Wfc_obs.Json.Obj
              ([
                 ("schema", Wfc_obs.Json.String Wfc_obs.Report.schema_version);
                 ( "scenarios",
                   Wfc_obs.Json.Arr
                     [
                       Wfc_obs.Json.Obj
                         [
                           ("name", Wfc_obs.Json.String "stats");
                           ( "seconds",
                             Wfc_obs.Json.Float
                               (Option.value ~default:0. (server_num "uptime_s")) );
                         ];
                     ] );
               ]
              @ obj_fields metrics
              @ match server with Some s -> [ ("server", s) ] | None -> [])
          in
          write_json_to path report
        | None -> ());
        0)
  in
  let prometheus =
    Arg.(
      value & flag
      & info [ "prometheus" ]
          ~doc:"Print Prometheus text exposition instead of the human table.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Live introspection of a running solvability daemon: version, uptime, in-flight \
          queries, queue depth, per-worker state, and every serve.* counter and stage/latency \
          histogram. Output as a human table (default), $(b,--json) wfc.obs.v1 report, or \
          $(b,--prometheus) text exposition.")
    Term.(const run $ socket_arg $ prometheus $ Output.json_arg)

let store_cmd =
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Machine output: one canonical JSON object on stdout instead of the table.")
  in
  let ls =
    (* Listing reads the manifest — one sequential file — never the tree:
       output order is the manifest's sorted live view, deterministic
       whatever readdir would say. *)
    let run store_dir json =
      let st = Wfc_serve.Store.open_store store_dir in
      let entries = Wfc_storage.Engine.ls (Wfc_serve.Store.engine st) in
      let verdicts, skeletons =
        List.partition (fun e -> e.Wfc_storage.Manifest.kind = Wfc_storage.Manifest.Verdict) entries
      in
      if json then
        print_endline
          (Wfc_obs.Json.to_string
             (Wfc_obs.Json.Obj
                [
                  ("schema", Wfc_obs.Json.String "wfc.store.ls.v1");
                  ("store", Wfc_obs.Json.String store_dir);
                  ("count", Wfc_obs.Json.Int (List.length verdicts));
                  ("skeletons", Wfc_obs.Json.Int (List.length skeletons));
                  ( "records",
                    Wfc_obs.Json.Arr
                      (List.map Wfc_storage.Manifest.entry_to_json verdicts) );
                ]))
      else begin
        List.iter
          (fun e ->
            Format.printf "%-60s %-11s level=%d %-14s codec=%s@."
              e.Wfc_storage.Manifest.rel e.Wfc_storage.Manifest.verdict
              e.Wfc_storage.Manifest.level e.Wfc_storage.Manifest.model
              e.Wfc_storage.Manifest.codec)
          verdicts;
        Format.printf "%d record(s), %d skeleton(s) in %s@." (List.length verdicts)
          (List.length skeletons) store_dir
      end;
      0
    in
    Cmd.v
      (Cmd.info "ls"
         ~doc:
           "List the live records of a verdict store from its manifest (sorted, \
            deterministic; no directory walk). $(b,--json) prints a wfc.store.ls.v1 \
            object for machine consumption. Flat pre-migration records are not indexed — \
            run $(b,wfc store migrate) first, or $(b,wfc store verify) to see them.")
      Term.(const run $ store_req_arg $ json_flag)
  in
  let verify =
    let run store_dir json =
      let st = Wfc_serve.Store.open_store store_dir in
      let r = Wfc_serve.Store.verify st in
      if json then
        print_endline
          (Wfc_obs.Json.to_string
             (Wfc_obs.Json.Obj
                [
                  ("schema", Wfc_obs.Json.String "wfc.store.verify.v1");
                  ("valid", Wfc_obs.Json.Int r.Wfc_serve.Store.valid);
                  ( "corrupt",
                    Wfc_obs.Json.Arr
                      (List.map
                         (fun (n, e) ->
                           Wfc_obs.Json.Obj
                             [
                               ("path", Wfc_obs.Json.String n);
                               ("error", Wfc_obs.Json.String e);
                             ])
                         r.Wfc_serve.Store.corrupt) );
                  ( "mismatched",
                    Wfc_obs.Json.Arr
                      (List.map
                         (fun n -> Wfc_obs.Json.String n)
                         r.Wfc_serve.Store.mismatched) );
                  ("quarantined", Wfc_obs.Json.Int r.Wfc_serve.Store.quarantined);
                  ("stray_tmp", Wfc_obs.Json.Int r.Wfc_serve.Store.stray_tmp);
                  ("unindexed", Wfc_obs.Json.Int r.Wfc_serve.Store.unindexed);
                  ("missing", Wfc_obs.Json.Int r.Wfc_serve.Store.missing);
                  ( "bad_manifest_lines",
                    Wfc_obs.Json.Int r.Wfc_serve.Store.bad_manifest_lines );
                ]))
      else begin
        Format.printf "valid: %d@." r.Wfc_serve.Store.valid;
        List.iter
          (fun (name, e) -> Format.printf "corrupt: %s (%s)@." name e)
          r.Wfc_serve.Store.corrupt;
        List.iter
          (fun name -> Format.printf "digest mismatch: %s@." name)
          r.Wfc_serve.Store.mismatched;
        Format.printf "quarantined: %d@." r.Wfc_serve.Store.quarantined;
        Format.printf "stray tmp files: %d@." r.Wfc_serve.Store.stray_tmp;
        Format.printf "unindexed files: %d@." r.Wfc_serve.Store.unindexed;
        Format.printf "missing files (live in manifest, gone on disk): %d@."
          r.Wfc_serve.Store.missing;
        Format.printf "torn manifest lines: %d@." r.Wfc_serve.Store.bad_manifest_lines
      end;
      if r.Wfc_serve.Store.corrupt = [] && r.Wfc_serve.Store.mismatched = [] then 0 else 1
    in
    Cmd.v
      (Cmd.info "verify"
         ~doc:
           "Reconcile a verdict store: every record checked against its filed path, the \
            manifest cross-checked against the tree both ways. Exits non-zero if any \
            in-place record is corrupt or misfiled; quarantined, stray-temp, unindexed \
            and missing files are reported but do not fail (contained or index-only \
            damage — clean with $(b,wfc store gc) / re-index with $(b,wfc store \
            migrate)).")
      Term.(const run $ store_req_arg $ json_flag)
  in
  let gc =
    let run store_dir =
      let st = Wfc_serve.Store.open_store store_dir in
      let removed = ref 0 in
      Wfc_serve.Store.gc st ~removed;
      Format.printf "removed %d quarantined/stray file(s); manifest compacted@." !removed;
      0
    in
    Cmd.v
      (Cmd.info "gc"
         ~doc:
           "Delete quarantined records and interrupted-write temp files from a store, \
            then compact the manifest to exactly the live record set.")
      Term.(const run $ store_req_arg)
  in
  let migrate =
    let run store_dir codec =
      let st = Wfc_serve.Store.open_store ~codec store_dir in
      let r = Wfc_serve.Store.migrate st in
      Format.printf "migrated: %d@." r.Wfc_serve.Store.migrated;
      Format.printf "already sharded: %d@." r.Wfc_serve.Store.untouched;
      Format.printf "re-indexed: %d@." r.Wfc_serve.Store.adopted;
      List.iter
        (fun (name, e) -> Format.printf "skipped: %s (%s)@." name e)
        r.Wfc_serve.Store.skipped;
      if r.Wfc_serve.Store.skipped = [] then 0 else 1
    in
    Cmd.v
      (Cmd.info "migrate"
         ~doc:
           "Rewrite flat records — v1 (pre-model, implicitly wait-free) and v2 (flat \
            pre-sharding) — under the sharded ab/cd layout with manifest entries, and \
            re-index any canonical file the manifest has lost. Idempotent; corrupt or \
            misfiled records are reported and left for $(b,wfc store verify) / $(b,gc).")
      Term.(const run $ store_req_arg $ codec_arg)
  in
  let seed =
    let count =
      Arg.(
        value & opt int 1000
        & info [ "count" ] ~docv:"N" ~doc:"Number of synthetic records to write.")
    in
    let run store_dir codec count =
      let st = Wfc_serve.Store.open_store ~codec store_dir in
      Wfc_storage.Engine.seed (Wfc_serve.Store.engine st) ~count;
      Format.printf "seeded %d synthetic record(s) into %s@." count store_dir;
      0
    in
    Cmd.v
      (Cmd.info "seed"
         ~doc:
           "Populate a store with deterministic synthetic records (benchmark / CI scale \
            runs — not real verdicts).")
      Term.(const run $ store_req_arg $ codec_arg $ count)
  in
  let rebuild =
    let run store_dir =
      let st = Wfc_serve.Store.open_store store_dir in
      let n = Wfc_storage.Engine.rebuild_manifest (Wfc_serve.Store.engine st) in
      Format.printf "manifest rebuilt: %d live entr%s@." n (if n = 1 then "y" else "ies");
      0
    in
    Cmd.v
      (Cmd.info "rebuild"
         ~doc:
           "Regenerate MANIFEST.jsonl from a directory walk — the recovery path proving \
            the manifest is derived state. Equivalent to the index a crash-free history \
            would have left (modulo compaction).")
      Term.(const run $ store_req_arg)
  in
  Cmd.group
    (Cmd.info "store"
       ~doc:
         "Inspect and maintain verdict stores: sharded wfc.store.v2 records under a \
          MANIFEST.jsonl index, with per-record codecs and a skeletons keyspace.")
    [ ls; verify; gc; migrate; seed; rebuild ]

(* ---------- models ---------- *)

let models_cmd =
  let run () =
    List.iter
      (fun (pattern, descr) -> Format.printf "%-16s %s@." pattern descr)
      Model.builtins;
    0
  in
  Cmd.v
    (Cmd.info "models"
       ~doc:
         "List the computation models $(b,--model) accepts: each is an affine restriction \
          of the IIS runs, decided over the same subdivided complexes. Solvability under \
          any model runs with the search reducers on by default — symmetry orbits are \
          computed on the model's admitted facet set, so a restriction that breaks a task \
          symmetry simply yields fewer orbits; $(b,--no-symmetry) and $(b,--no-collapse) \
          on $(b,solve)/$(b,query) fall back to the unreduced engine.")
    Term.(const run $ const ())

(* ---------- converge ---------- *)

let converge_cmd =
  let run dim levels seed =
    let target = Sds.subdiv (Sds.standard ~dim ~levels) in
    match Convergence.prepare target with
    | None ->
      Format.printf "no chromatic map found@.";
      1
    | Some t ->
      Format.printf "CSASS over SDS^%d(s^%d): decision map at k=%d@." levels dim
        t.Convergence.level;
      let participating = List.init (dim + 1) (fun i -> i) in
      (match Convergence.run t ~participating (Runtime.random ~seed ()) with
      | Ok outputs ->
        List.iter
          (fun (p, w) ->
            Format.printf "  P%d -> vertex %d (carrier %s)@." p w
              (Simplex.to_string (t.Convergence.target.Subdiv.carrier w)))
          outputs;
        0
      | Error e ->
        Format.printf "  run failed: %s@." e;
        1)
  in
  Cmd.v
    (Cmd.info "converge"
       ~doc:"Chromatic simplex agreement over SDS^b(s^n), end to end (Theorem 5.1).")
    Term.(const run $ dim_arg $ levels_arg $ seed_arg)

(* ---------- approx ---------- *)

let approx_cmd =
  let run dim levels scheme =
    let target = Sds.subdiv (Sds.standard ~dim ~levels) in
    let scheme = match scheme with "bsd" -> `Bsd | _ -> `Sds in
    match Approximation.min_level ~scheme ~target () with
    | Some (k, phi) ->
      Format.printf "minimal k = %d; map is simplicial: %b@." k
        (Simplicial_map.is_simplicial phi);
      0
    | None ->
      Format.printf "no approximation found up to k = 6@.";
      1
  in
  let scheme =
    Arg.(
      value
      & opt (enum [ ("bsd", "bsd"); ("sds", "sds") ]) "bsd"
      & info [ "scheme" ] ~docv:"S" ~doc:"Source subdivision scheme: bsd or sds.")
  in
  Cmd.v
    (Cmd.info "approx"
       ~doc:"Carrier-preserving simplicial approximation onto SDS^b(s^n) (Lemma 5.3).")
    Term.(const run $ dim_arg $ levels_arg $ scheme)

(* ---------- bound ---------- *)

let bound_cmd =
  let run procs crashes =
    let r = Bounded.decision_bound ~crashes (fun () -> Protocols.is_renaming ~procs) in
    Format.printf
      "IS renaming, %d processes: %d executions explored, decision bound %d, max depth %d@."
      procs r.Bounded.runs r.Bounded.bound r.Bounded.depth;
    0
  in
  let crashes =
    Arg.(value & opt int 0 & info [ "crashes" ] ~docv:"C" ~doc:"Also explore up to C crashes.")
  in
  Cmd.v
    (Cmd.info "bound"
       ~doc:"Materialize the execution tree and extract the decision bound (Lemma 3.1).")
    Term.(const run $ procs_arg $ crashes)

(* ---------- check-json ---------- *)

let check_json_cmd =
  let run file expect_verdict min_nodes scenario =
    let contents =
      if file = "-" then In_channel.input_all stdin
      else In_channel.with_open_bin file In_channel.input_all
    in
    let check_log () =
      if expect_verdict <> None || min_nodes <> None || scenario <> None then begin
        Format.eprintf "%s: --expect-verdict/--min-nodes/--scenario only apply to %s reports@."
          file Wfc_obs.Report.schema_version;
        1
      end
      else
        match Wfc_obs.Log.validate contents with
        | Ok n ->
          Format.printf "%s: valid %s log (%d event%s)@." file Wfc_obs.Log.schema_version n
            (if n = 1 then "" else "s");
          0
        | Error e ->
          Format.eprintf "%s: invalid log (%s)@." file e;
          1
    in
    (* An event log is JSONL: the whole file is not one JSON value, so the
       plain parse fails. If the FIRST line is a wfc.log.v1 event, validate
       the file line-wise; otherwise report the original parse error. *)
    let first_line_is_log () =
      match
        List.find_opt (fun l -> String.trim l <> "") (String.split_on_char '\n' contents)
      with
      | None -> false
      | Some line -> (
        match Wfc_obs.Json.parse line with
        | Error _ -> false
        | Ok j -> (
          match Wfc_obs.Json.member "schema" j with
          | Some (Wfc_obs.Json.String s) -> s = Wfc_obs.Log.schema_version
          | _ -> false))
    in
    match Wfc_obs.Json.parse contents with
    | Error e ->
      if first_line_is_log () then check_log ()
      else begin
        Format.eprintf "%s: not valid JSON (%s)@." file e;
        1
      end
    | Ok j -> (
      (* dispatch on the schema tag: one checker for every artifact we emit *)
      match Wfc_obs.Json.member "schema" j with
      | Some (Wfc_obs.Json.String s) when s = Wfc_obs.Report.schema_version -> (
        match
          Wfc_obs.Report.validate ?expect_verdict ?min_nodes ?scenario_name:scenario j
        with
        | Ok () ->
          Format.printf "%s: valid %s report@." file Wfc_obs.Report.schema_version;
          0
        | Error e ->
          Format.eprintf "%s: invalid report (%s)@." file e;
          1)
      | Some (Wfc_obs.Json.String s) when s = Trace_io.schema_version ->
        if expect_verdict <> None || min_nodes <> None || scenario <> None then begin
          Format.eprintf
            "%s: --expect-verdict/--min-nodes/--scenario only apply to %s reports@." file
            Wfc_obs.Report.schema_version;
          1
        end
        else (
          match Trace_io.validate j with
          | Ok () ->
            Format.printf "%s: valid %s trace@." file Trace_io.schema_version;
            0
          | Error e ->
            Format.eprintf "%s: invalid trace (%s)@." file e;
            1)
      | Some (Wfc_obs.Json.String s)
        when s = Wfc_serve.Store.schema_version || s = Wfc_serve.Store.schema_version_v1 ->
        if scenario <> None then begin
          Format.eprintf "%s: --scenario only applies to %s reports@." file
            Wfc_obs.Report.schema_version;
          1
        end
        else (
          match Wfc_serve.Store.record_of_json j with
          | Error e ->
            Format.eprintf "%s: invalid store record (%s)@." file e;
            1
          | Ok r ->
            let o = r.Wfc_serve.Store.outcome in
            let verdict_ok =
              match expect_verdict with
              | None -> true
              | Some v -> v = o.Solvability.o_verdict
            in
            let nodes_ok =
              match min_nodes with None -> true | Some n -> o.Solvability.o_nodes >= n
            in
            if not verdict_ok then begin
              Format.eprintf "%s: verdict is %S, expected %S@." file
                o.Solvability.o_verdict
                (Option.value ~default:"" expect_verdict);
              1
            end
            else if not nodes_ok then begin
              Format.eprintf "%s: %d nodes, expected at least %d@." file
                o.Solvability.o_nodes
                (Option.value ~default:0 min_nodes);
              1
            end
            else begin
              Format.printf "%s: valid %s record@." file s;
              0
            end)
      | Some (Wfc_obs.Json.String s) when s = Wfc_obs.Log.schema_version ->
        (* a one-event log file IS a single JSON value; same line-wise check *)
        check_log ()
      | Some (Wfc_obs.Json.String s) ->
        Format.eprintf "%s: unknown schema %S@." file s;
        exit_unknown_schema
      | Some _ | None ->
        Format.eprintf "%s: missing \"schema\" tag@." file;
        exit_unknown_schema)
  in
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"File to check.")
  in
  let expect_verdict =
    Arg.(
      value
      & opt (some string) None
      & info [ "expect-verdict" ] ~docv:"V" ~doc:"Require a scenario with this verdict.")
  in
  let min_nodes =
    Arg.(
      value
      & opt (some int) None
      & info [ "min-nodes" ] ~docv:"N" ~doc:"Require a scenario with at least $(docv) nodes.")
  in
  let scenario =
    Arg.(
      value
      & opt (some string) None
      & info [ "scenario" ] ~docv:"NAME" ~doc:"Apply the constraints to this scenario only.")
  in
  Cmd.v
    (Cmd.info "check-json"
       ~doc:
         "Validate a JSON artifact by its schema tag: wfc.obs.v1 reports, wfc.trace.v1 \
          traces, wfc.store.v2 (or legacy v1) verdict records, and wfc.log.v1 event logs \
          (JSONL: validated line by line). Exits 4 on an unknown schema.")
    Term.(const run $ file $ expect_verdict $ min_nodes $ scenario)

let main_cmd =
  let doc = "wait-free computations via iterated immediate snapshots (Borowsky-Gafni, PODC'97)" in
  Cmd.group
    (Cmd.info "wfc" ~version:"1.0.0" ~doc)
    [
      sds_cmd;
      homology_cmd;
      pc_cmd;
      emulate_cmd;
      trace_cmd;
      replay_cmd;
      solve_cmd;
      serve_cmd;
      query_cmd;
      stats_cmd;
      store_cmd;
      models_cmd;
      converge_cmd;
      approx_cmd;
      bound_cmd;
      simulate_cmd;
      check_json_cmd;
    ]

let () = exit (Cmd.eval' main_cmd)
