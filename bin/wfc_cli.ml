(* wfc — command-line explorer for wait-free computability.

   Subcommands mirror the paper's artifacts: subdivisions and their geometry
   (§2, §3.6), protocol complexes by execution (§3), the Figure-2 emulation
   (§4), task solvability (Prop 3.1), and convergence/approximation (§5).

   Output is unified through [Output]: subcommands that do measurable work
   accept [--stats] (print the Wfc_obs metrics) and [--json FILE] (write a
   wfc.obs.v1 report, same schema as bench/main.exe --json).

   Exit codes: 0 = clean verdict (including "unsolvable" — a completed
   exhaustive search is a successful answer), 3 = search budget exhausted
   (no verdict), 1/124/125 = cmdliner's usual failures. *)

open Cmdliner
open Wfc_topology
open Wfc_model
open Wfc_tasks
open Wfc_core

let exit_exhausted = 3

(* ---------- shared arguments ---------- *)

let dim_arg =
  Arg.(value & opt int 2 & info [ "n"; "dim" ] ~docv:"N" ~doc:"Dimension of the base simplex.")

let levels_arg =
  Arg.(value & opt int 1 & info [ "b"; "levels" ] ~docv:"B" ~doc:"Subdivision / round count.")

let procs_arg =
  Arg.(value & opt int 3 & info [ "p"; "procs" ] ~docv:"P" ~doc:"Number of processes.")

let seed_arg = Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc:"Adversary seed.")

(* ---------- sds ---------- *)

let sds_cmd =
  let run dim levels svg tikz stats json =
    let s, seconds = Output.timed (fun () -> Sds.standard ~dim ~levels) in
    let cx = Chromatic.complex (Sds.complex s) in
    Format.printf "%a@." Complex.pp_stats cx;
    Format.printf "expected facets: %d@." (Sds.count_facets ~dim ~levels);
    let geometric_ok =
      match Subdiv.check_geometric (Sds.subdiv s) with
      | Ok () ->
        Format.printf "geometric realization: exact@.";
        true
      | Error e ->
        Format.printf "geometric realization: BROKEN (%s)@." e;
        false
    in
    (match svg with
    | Some path ->
      let oc = open_out path in
      output_string oc (Export.svg (Sds.subdiv s));
      close_out oc;
      Format.printf "wrote %s@." path
    | None -> ());
    if tikz then print_string (Export.tikz (Sds.subdiv s));
    Output.emit ~stats ~json
      [
        Wfc_obs.Report.scenario
          ~extra:
            [
              ("facets", Wfc_obs.Json.Int (List.length (Complex.facets cx)));
              ("geometric_ok", Wfc_obs.Json.Bool geometric_ok);
            ]
          (Printf.sprintf "sds(dim=%d,levels=%d)" dim levels)
          seconds;
      ];
    0
  in
  let svg =
    Arg.(value & opt (some string) None & info [ "svg" ] ~docv:"FILE" ~doc:"Write an SVG drawing.")
  in
  let tikz = Arg.(value & flag & info [ "tikz" ] ~doc:"Print a TikZ picture.") in
  Cmd.v
    (Cmd.info "sds" ~doc:"Iterated standard chromatic subdivision: stats, geometry, drawings.")
    Term.(const run $ dim_arg $ levels_arg $ svg $ tikz $ Output.stats_arg $ Output.json_arg)

(* ---------- homology ---------- *)

let homology_cmd =
  let run dim levels integer stats json =
    let (b, acyclic), seconds =
      Output.timed (fun () ->
          let cx = Chromatic.complex (Sds.complex (Sds.standard ~dim ~levels)) in
          let b = Homology.reduced_betti cx in
          let acyclic = Homology.is_acyclic cx in
          if integer then
            Format.printf "integer homology: %s@." (Homology_z.homology_summary cx);
          (b, acyclic))
    in
    Format.printf "SDS^%d(s^%d): reduced betti (Z/2) = (%s), acyclic = %b@." levels dim
      (String.concat "," (Array.to_list (Array.map string_of_int b)))
      acyclic;
    Output.emit ~stats ~json
      [
        Wfc_obs.Report.scenario
          ~extra:
            [
              ( "betti",
                Wfc_obs.Json.Arr
                  (Array.to_list (Array.map (fun x -> Wfc_obs.Json.Int x) b)) );
              ("acyclic", Wfc_obs.Json.Bool acyclic);
            ]
          (Printf.sprintf "homology(dim=%d,levels=%d)" dim levels)
          seconds;
      ];
    0
  in
  let integer =
    Arg.(value & flag & info [ "z"; "integer" ] ~doc:"Also compute integer homology (SNF).")
  in
  Cmd.v
    (Cmd.info "homology" ~doc:"Z/2 (and optionally Z) homology of SDS^b(s^n) (Lemma 2.2).")
    Term.(const run $ dim_arg $ levels_arg $ integer $ Output.stats_arg $ Output.json_arg)

(* ---------- simulate (BG simulation) ---------- *)

let simulate_cmd =
  let run simulators procs rounds seed crash =
    let spec = Bg_simulation.full_information_spec ~procs ~k:rounds in
    let strategy =
      match crash with
      | [] -> Runtime.random ~seed ()
      | victims -> Runtime.random_with_crashes ~seed ~crash:victims ()
    in
    let r = Bg_simulation.run ~simulators spec strategy in
    Format.printf "completed simulated processes: %s@."
      (String.concat ","
         (Array.to_list (Array.mapi (fun j b -> Printf.sprintf "P%d:%b" j b) r.Bg_simulation.completed)));
    Format.printf "snapshot agreements: %d@." r.Bg_simulation.cost.Bg_simulation.agreements;
    Format.printf "ops per simulator: %s@."
      (String.concat ","
         (Array.to_list
            (Array.map string_of_int r.Bg_simulation.cost.Bg_simulation.simulator_ops)));
    match Bg_simulation.check spec r with
    | Ok () ->
      Format.printf "simulated history: legal@.";
      0
    | Error e ->
      Format.printf "simulated history: BROKEN (%s)@." e;
      1
  in
  let simulators =
    Arg.(value & opt int 2 & info [ "s"; "simulators" ] ~docv:"S" ~doc:"Number of simulators.")
  in
  let crash =
    Arg.(value & opt (list int) [] & info [ "crash" ] ~docv:"S,..." ~doc:"Crash these simulators.")
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"BG simulation: S crash-prone simulators run a P-process snapshot protocol.")
    Term.(const run $ simulators $ procs_arg $ levels_arg $ seed_arg $ crash)

(* ---------- protocol-complex ---------- *)

let pc_cmd =
  let run model procs rounds =
    let pc =
      match model with
      | "is" -> Protocol_complex.one_shot_is ~procs
      | "iis" -> Protocol_complex.iis ~procs ~rounds
      | "atomic" -> Protocol_complex.atomic ~procs ~rounds
      | m -> failwith ("unknown model: " ^ m)
    in
    Format.printf "%a@." Complex.pp_stats (Chromatic.complex pc.Protocol_complex.chromatic);
    if model <> "atomic" then begin
      let sds = Sds.standard ~dim:(procs - 1) ~levels:(if model = "is" then 1 else rounds) in
      Format.printf "matches SDS^b(s^n): %b@." (Protocol_complex.matches_sds pc sds)
    end;
    0
  in
  let model =
    Arg.(
      value
      & opt (enum [ ("is", "is"); ("iis", "iis"); ("atomic", "atomic") ]) "iis"
      & info [ "model" ] ~docv:"MODEL" ~doc:"One of is, iis, atomic.")
  in
  Cmd.v
    (Cmd.info "protocol-complex"
       ~doc:"Build a protocol complex by running every schedule (Lemmas 3.2/3.3).")
    Term.(const run $ model $ procs_arg $ levels_arg)

(* ---------- emulate ---------- *)

let emulate_cmd =
  let run procs rounds seed trace crash stats json =
    let spec = Emulation.full_information_spec ~procs ~k:rounds in
    let strategy =
      match crash with
      | [] -> Runtime.random ~seed ()
      | victims -> Runtime.random_with_crashes ~seed ~crash:victims ()
    in
    let r, seconds = Output.timed (fun () -> Emulation.run spec strategy) in
    let cost = r.Emulation.cost in
    Format.printf "IIS memories used: %d@." cost.Emulation.memories;
    Format.printf "WriteReads per process: %s@."
      (String.concat ", "
         (Array.to_list (Array.mapi (Printf.sprintf "P%d:%d") cost.Emulation.write_reads)));
    let atomic =
      match Emulation.check r with
      | Ok () ->
        Format.printf "atomicity: OK@.";
        true
      | Error e ->
        Format.printf "atomicity: VIOLATED (%s)@." e;
        false
    in
    if trace then
      List.iter
        (fun o ->
          match o.Trace.kind with
          | `Write sq ->
            Format.printf "  P%d write#%d  [%d,%d]@." o.Trace.proc sq o.Trace.t_start
              o.Trace.t_end
          | `Snapshot v ->
            Format.printf "  P%d snap (%s)  [%d,%d]@." o.Trace.proc
              (String.concat "," (Array.to_list (Array.map string_of_int v)))
              o.Trace.t_start o.Trace.t_end)
        r.Emulation.ops;
    Output.emit ~stats ~json
      [
        Wfc_obs.Report.scenario
          ~verdict:(if atomic then "atomic" else "violated")
          ~extra:
            [
              ("memories", Wfc_obs.Json.Int cost.Emulation.memories);
              ( "write_reads",
                Wfc_obs.Json.Int (Array.fold_left ( + ) 0 cost.Emulation.write_reads) );
              ("steps", Wfc_obs.Json.Int cost.Emulation.steps);
            ]
          (Printf.sprintf "emulate(procs=%d,rounds=%d,seed=%d)" procs rounds seed)
          seconds;
      ];
    if atomic then 0 else 1
  in
  let trace = Arg.(value & flag & info [ "trace" ] ~doc:"Print the emulated operation log.") in
  let crash =
    Arg.(value & opt (list int) [] & info [ "crash" ] ~docv:"P,..." ~doc:"Crash these processes.")
  in
  Cmd.v
    (Cmd.info "emulate"
       ~doc:"Emulate the k-shot atomic snapshot protocol over IIS (Figure 2) and certify it.")
    Term.(
      const run $ procs_arg $ levels_arg $ seed_arg $ trace $ crash $ Output.stats_arg
      $ Output.json_arg)

(* ---------- solve ---------- *)

let task_of name procs param =
  match name with
  | "consensus" -> Instances.binary_consensus ~procs
  | "set-consensus" -> Instances.set_consensus ~procs ~k:param
  | "renaming" -> Instances.adaptive_renaming ~procs ~names:param
  | "approx" -> Instances.approximate_agreement ~procs ~grid:param
  | "identity" -> Instances.id_task ~procs
  | "tas" -> Instances.k_test_and_set ~procs ~k:param
  | "fai" -> Instances.fetch_and_increment_order ~procs
  | "loop-disk" -> Instances.loop_agreement_on_disk ()
  | "loop-circle" -> Instances.loop_agreement_on_circle ()
  | t -> failwith ("unknown task: " ^ t)

let solve_cmd =
  let run task procs param max_level validate stats json =
    let t = task_of task procs param in
    Format.printf "%a@." Task.pp_stats t;
    let verdict = Solvability.solve ~max_level t in
    let vstats = Solvability.stats_of_verdict verdict in
    let level =
      match verdict with
      | Solvability.Solvable { map; _ } -> map.Solvability.level
      | Solvability.Unsolvable_at { level; _ } | Solvability.Exhausted { level; _ } -> level
    in
    let code =
      match verdict with
      | Solvability.Solvable { map; _ } ->
        Format.printf "SOLVABLE with %d IIS round(s); map verified: %b@."
          map.Solvability.level
          (Solvability.verify map = Ok ());
        if validate then begin
          match Characterization.validate map with
          | Ok () -> Format.printf "distributed validation: OK@."
          | Error e -> Format.printf "distributed validation: FAILED (%s)@." e
        end;
        0
      | Solvability.Unsolvable_at { level = b; _ } ->
        (* a completed exhaustive search IS the answer: exit 0 *)
        Format.printf "UNSOLVABLE for every b <= %d (search space exhausted)@." b;
        0
      | Solvability.Exhausted { level; stats = s } ->
        Format.printf "UNDECIDED at b = %d (budget: %d nodes)@." level s.Solvability.nodes;
        exit_exhausted
    in
    if stats then Format.printf "search: %a@." Solvability.pp_stats vstats;
    Output.emit ~stats ~json
      [
        Wfc_obs.Report.scenario ~nodes:vstats.Solvability.nodes
          ~verdict:(Solvability.verdict_name verdict)
          ~extra:
            [
              ("level", Wfc_obs.Json.Int level);
              ("backtracks", Wfc_obs.Json.Int vstats.Solvability.backtracks);
              ("prunes", Wfc_obs.Json.Int vstats.Solvability.prunes);
            ]
          (Printf.sprintf "solve(%s,procs=%d,param=%d)" task procs param)
          vstats.Solvability.elapsed;
      ];
    code
  in
  let task =
    Arg.(
      value
      & opt string "consensus"
      & info [ "task" ] ~docv:"TASK"
          ~doc:"One of consensus, set-consensus, renaming, approx, identity, tas, fai, loop-disk, loop-circle.")
  in
  let param =
    Arg.(
      value & opt int 2
      & info [ "param" ] ~docv:"K"
          ~doc:"Task parameter: k for set-consensus, names for renaming, grid for approx.")
  in
  let max_level =
    Arg.(value & opt int 2 & info [ "max-level" ] ~docv:"B" ~doc:"Largest round count to try.")
  in
  let validate =
    Arg.(value & flag & info [ "validate" ] ~doc:"Run the found map as a distributed protocol.")
  in
  Cmd.v
    (Cmd.info "solve"
       ~doc:
         "Decide wait-free solvability of a task (Proposition 3.1). Exits 0 on a verdict \
          (solvable or unsolvable), 3 if the node budget ran out.")
    Term.(
      const run $ task $ procs_arg $ param $ max_level $ validate $ Output.stats_arg
      $ Output.json_arg)

(* ---------- converge ---------- *)

let converge_cmd =
  let run dim levels seed =
    let target = Sds.subdiv (Sds.standard ~dim ~levels) in
    match Convergence.prepare target with
    | None ->
      Format.printf "no chromatic map found@.";
      1
    | Some t ->
      Format.printf "CSASS over SDS^%d(s^%d): decision map at k=%d@." levels dim
        t.Convergence.level;
      let participating = List.init (dim + 1) (fun i -> i) in
      (match Convergence.run t ~participating (Runtime.random ~seed ()) with
      | Ok outputs ->
        List.iter
          (fun (p, w) ->
            Format.printf "  P%d -> vertex %d (carrier %s)@." p w
              (Simplex.to_string (t.Convergence.target.Subdiv.carrier w)))
          outputs;
        0
      | Error e ->
        Format.printf "  run failed: %s@." e;
        1)
  in
  Cmd.v
    (Cmd.info "converge"
       ~doc:"Chromatic simplex agreement over SDS^b(s^n), end to end (Theorem 5.1).")
    Term.(const run $ dim_arg $ levels_arg $ seed_arg)

(* ---------- approx ---------- *)

let approx_cmd =
  let run dim levels scheme =
    let target = Sds.subdiv (Sds.standard ~dim ~levels) in
    let scheme = match scheme with "bsd" -> `Bsd | _ -> `Sds in
    match Approximation.min_level ~scheme ~target () with
    | Some (k, phi) ->
      Format.printf "minimal k = %d; map is simplicial: %b@." k
        (Simplicial_map.is_simplicial phi);
      0
    | None ->
      Format.printf "no approximation found up to k = 6@.";
      1
  in
  let scheme =
    Arg.(
      value
      & opt (enum [ ("bsd", "bsd"); ("sds", "sds") ]) "bsd"
      & info [ "scheme" ] ~docv:"S" ~doc:"Source subdivision scheme: bsd or sds.")
  in
  Cmd.v
    (Cmd.info "approx"
       ~doc:"Carrier-preserving simplicial approximation onto SDS^b(s^n) (Lemma 5.3).")
    Term.(const run $ dim_arg $ levels_arg $ scheme)

(* ---------- bound ---------- *)

let bound_cmd =
  let run procs crashes =
    let r = Bounded.decision_bound ~crashes (fun () -> Protocols.is_renaming ~procs) in
    Format.printf
      "IS renaming, %d processes: %d executions explored, decision bound %d, max depth %d@."
      procs r.Bounded.runs r.Bounded.bound r.Bounded.depth;
    0
  in
  let crashes =
    Arg.(value & opt int 0 & info [ "crashes" ] ~docv:"C" ~doc:"Also explore up to C crashes.")
  in
  Cmd.v
    (Cmd.info "bound"
       ~doc:"Materialize the execution tree and extract the decision bound (Lemma 3.1).")
    Term.(const run $ procs_arg $ crashes)

(* ---------- check-json ---------- *)

let check_json_cmd =
  let run file expect_verdict min_nodes scenario =
    let contents =
      let ic = open_in_bin file in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Wfc_obs.Json.parse contents with
    | Error e ->
      Format.eprintf "%s: not valid JSON (%s)@." file e;
      1
    | Ok j -> (
      match
        Wfc_obs.Report.validate ?expect_verdict ?min_nodes ?scenario_name:scenario j
      with
      | Ok () ->
        Format.printf "%s: valid %s report@." file Wfc_obs.Report.schema_version;
        0
      | Error e ->
        Format.eprintf "%s: invalid report (%s)@." file e;
        1)
  in
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Report to check.")
  in
  let expect_verdict =
    Arg.(
      value
      & opt (some string) None
      & info [ "expect-verdict" ] ~docv:"V" ~doc:"Require a scenario with this verdict.")
  in
  let min_nodes =
    Arg.(
      value
      & opt (some int) None
      & info [ "min-nodes" ] ~docv:"N" ~doc:"Require a scenario with at least $(docv) nodes.")
  in
  let scenario =
    Arg.(
      value
      & opt (some string) None
      & info [ "scenario" ] ~docv:"NAME" ~doc:"Apply the constraints to this scenario only.")
  in
  Cmd.v
    (Cmd.info "check-json"
       ~doc:"Validate a wfc.obs.v1 JSON report (used by CI on both wfc and bench output).")
    Term.(const run $ file $ expect_verdict $ min_nodes $ scenario)

let main_cmd =
  let doc = "wait-free computations via iterated immediate snapshots (Borowsky-Gafni, PODC'97)" in
  Cmd.group
    (Cmd.info "wfc" ~version:"1.0.0" ~doc)
    [
      sds_cmd;
      homology_cmd;
      pc_cmd;
      emulate_cmd;
      solve_cmd;
      converge_cmd;
      approx_cmd;
      bound_cmd;
      simulate_cmd;
      check_json_cmd;
    ]

let () = exit (Cmd.eval' main_cmd)
